//! An instrumented Adaptive Radix Tree (the paper's `ARTOLC` workload).
//!
//! A real ART over 8-byte keys with the four adaptive node types
//! (Node4/16/48/256), lazy expansion (single-key subtrees stay as
//! leaves), and node growth on overflow. Every node lives on the shadow
//! heap; descents, inserts and grow-copies record their line traffic.

use crate::record::{Recorder, ShadowHeap};
use nvsim::addr::Addr;

/// Shadow sizes of each node kind (header + index structures + pointers),
/// rounded to lines.
const LEAF_BYTES: u64 = 64;
const N4_BYTES: u64 = 64;
const N16_BYTES: u64 = 192;
const N48_BYTES: u64 = 704;
const N256_BYTES: u64 = 2112;

#[derive(Debug)]
enum Kind {
    Leaf {
        key: u64,
    },
    /// An inner node; the adaptive kinds differ only in capacity and
    /// shadow footprint here.
    Inner {
        /// Sorted (byte, child index) pairs.
        slots: Vec<(u8, usize)>,
        capacity: usize,
    },
}

#[derive(Debug)]
struct ArtSlot {
    base: Addr,
    kind: Kind,
}

fn key_byte(key: u64, depth: usize) -> u8 {
    (key >> (56 - 8 * depth)) as u8
}

/// The instrumented adaptive radix tree.
#[derive(Debug)]
pub struct Art {
    nodes: Vec<ArtSlot>,
    root: Option<usize>,
    len: u64,
    grows: u64,
}

impl Default for Art {
    fn default() -> Self {
        Self::new()
    }
}

impl Art {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            root: None,
            len: 0,
            grows: 0,
        }
    }

    /// Keys stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Node-growth events so far (4→16→48→256).
    pub fn grows(&self) -> u64 {
        self.grows
    }

    fn new_leaf(&mut self, key: u64, heap: &mut ShadowHeap, rec: &mut Recorder) -> usize {
        let base = heap.alloc(LEAF_BYTES, 64);
        rec.store(base);
        self.nodes.push(ArtSlot {
            base,
            kind: Kind::Leaf { key },
        });
        self.nodes.len() - 1
    }

    fn new_inner(&mut self, heap: &mut ShadowHeap, rec: &mut Recorder) -> usize {
        let base = heap.alloc(N4_BYTES, 64);
        rec.store(base);
        self.nodes.push(ArtSlot {
            base,
            kind: Kind::Inner {
                slots: Vec::new(),
                capacity: 4,
            },
        });
        self.nodes.len() - 1
    }

    /// Looks a key up, recording the descent.
    pub fn contains(&self, key: u64, rec: &mut Recorder) -> bool {
        let mut cur = match self.root {
            Some(r) => r,
            None => return false,
        };
        for depth in 0..8 {
            let slot = &self.nodes[cur];
            rec.load(slot.base);
            match &slot.kind {
                Kind::Leaf { key: k } => return *k == key,
                Kind::Inner { slots, .. } => {
                    let b = key_byte(key, depth);
                    // The index lookup touches the key array line(s).
                    rec.load(Addr::new(slot.base.raw() + 16));
                    match slots.binary_search_by_key(&b, |(kb, _)| *kb) {
                        Ok(i) => cur = slots[i].1,
                        Err(_) => return false,
                    }
                }
            }
        }
        matches!(&self.nodes[cur].kind, Kind::Leaf { key: k } if *k == key)
    }

    /// Inserts a key (duplicates ignored), recording all traffic.
    pub fn insert(&mut self, key: u64, rec: &mut Recorder, heap: &mut ShadowHeap) {
        let Some(mut cur) = self.root else {
            let leaf = self.new_leaf(key, heap, rec);
            self.root = Some(leaf);
            self.len = 1;
            return;
        };
        let mut parent: Option<(usize, u8)> = None;
        for depth in 0..8 {
            rec.load(self.nodes[cur].base);
            match &self.nodes[cur].kind {
                Kind::Leaf { key: existing } => {
                    let existing = *existing;
                    if existing == key {
                        return; // duplicate
                    }
                    // Lazy expansion: grow a chain of inner nodes over the
                    // common prefix, then branch into two leaves.
                    let mut d = depth;
                    let mut chain_top: Option<usize> = None;
                    let mut chain_bottom: Option<usize> = None;
                    while d < 8 && key_byte(key, d) == key_byte(existing, d) {
                        let inner = self.new_inner(heap, rec);
                        if let Some(bot) = chain_bottom {
                            let b = key_byte(key, d - 1);
                            self.link(bot, b, inner, rec, heap);
                        }
                        if chain_top.is_none() {
                            chain_top = Some(inner);
                        }
                        chain_bottom = Some(inner);
                        d += 1;
                    }
                    debug_assert!(d < 8, "distinct keys diverge within 8 bytes");
                    let branch = self.new_inner(heap, rec);
                    if let Some(bot) = chain_bottom {
                        let b = key_byte(key, d - 1);
                        self.link(bot, b, branch, rec, heap);
                    }
                    let top = chain_top.unwrap_or(branch);
                    let new_leaf = self.new_leaf(key, heap, rec);
                    self.link(branch, key_byte(key, d), new_leaf, rec, heap);
                    self.link(branch, key_byte(existing, d), cur, rec, heap);
                    // Splice the chain where the old leaf hung.
                    match parent {
                        Some((p, byte)) => self.relink(p, byte, top, rec),
                        None => self.root = Some(top),
                    }
                    self.len += 1;
                    return;
                }
                Kind::Inner { slots, .. } => {
                    let b = key_byte(key, depth);
                    rec.load(Addr::new(self.nodes[cur].base.raw() + 16));
                    match slots.binary_search_by_key(&b, |(kb, _)| *kb) {
                        Ok(i) => {
                            let next = slots[i].1;
                            parent = Some((cur, b));
                            cur = next;
                        }
                        Err(_) => {
                            let leaf = self.new_leaf(key, heap, rec);
                            self.link(cur, b, leaf, rec, heap);
                            self.len += 1;
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Adds a child under `byte`, growing the node when full.
    fn link(
        &mut self,
        n: usize,
        byte: u8,
        child: usize,
        rec: &mut Recorder,
        heap: &mut ShadowHeap,
    ) {
        // Grow first if needed.
        let (full, cap) = match &self.nodes[n].kind {
            Kind::Inner { slots, capacity } => (slots.len() >= *capacity, *capacity),
            Kind::Leaf { .. } => unreachable!("link targets inner nodes"),
        };
        if full {
            let (new_cap, bytes) = match cap {
                4 => (16, N16_BYTES),
                16 => (48, N48_BYTES),
                48 => (256, N256_BYTES),
                _ => unreachable!("Node256 never fills for 1-byte indices"),
            };
            self.grows += 1;
            let new_base = heap.alloc(bytes, 64);
            // Grow-copy: read every old slot, write the new node.
            let old_base = self.nodes[n].base;
            let count = match &self.nodes[n].kind {
                Kind::Inner { slots, .. } => slots.len(),
                Kind::Leaf { .. } => unreachable!(),
            };
            rec.load_range(old_base, 16 + count as u64 * 9);
            // The new node is allocated and fully initialized, then the
            // old slots are copied in.
            rec.store_range(new_base, bytes);
            let slot = &mut self.nodes[n];
            slot.base = new_base;
            if let Kind::Inner { capacity, .. } = &mut slot.kind {
                *capacity = new_cap;
            }
        }
        let base = self.nodes[n].base;
        if let Kind::Inner { slots, .. } = &mut self.nodes[n].kind {
            match slots.binary_search_by_key(&byte, |(kb, _)| *kb) {
                Ok(i) => slots[i].1 = child,
                Err(i) => slots.insert(i, (byte, child)),
            }
        }
        rec.store(Addr::new(base.raw() + 16)); // index entry
        rec.store(base); // header/count
    }

    /// Replaces the child under `byte` (no growth).
    fn relink(&mut self, n: usize, byte: u8, child: usize, rec: &mut Recorder) {
        let base = self.nodes[n].base;
        if let Kind::Inner { slots, .. } = &mut self.nodes[n].kind {
            if let Ok(i) = slots.binary_search_by_key(&byte, |(kb, _)| *kb) {
                slots[i].1 = child;
            }
        }
        rec.store(Addr::new(base.raw() + 16));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Art, Recorder, ShadowHeap) {
        (Art::new(), Recorder::new(1), ShadowHeap::new())
    }

    #[test]
    fn insert_and_lookup_random_keys() {
        let (mut t, mut rec, mut heap) = setup();
        let keys: Vec<u64> = (0..3000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        for &k in &keys {
            t.insert(k, &mut rec, &mut heap);
        }
        assert_eq!(t.len(), 3000);
        for &k in &keys {
            assert!(t.contains(k, &mut rec), "key {k:#x}");
        }
        assert!(!t.contains(0xdead_beef, &mut rec));
    }

    #[test]
    fn duplicates_are_ignored() {
        let (mut t, mut rec, mut heap) = setup();
        t.insert(42, &mut rec, &mut heap);
        t.insert(42, &mut rec, &mut heap);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn dense_prefixes_grow_nodes() {
        let (mut t, mut rec, mut heap) = setup();
        // 300 keys sharing the top 7 bytes: the bottom node must grow
        // 4→16→48→256.
        for i in 0..256u64 {
            t.insert(0xAA00_0000_0000_0000 | i, &mut rec, &mut heap);
        }
        assert!(t.grows() >= 3, "grew through the node kinds: {}", t.grows());
        for i in 0..256u64 {
            assert!(t.contains(0xAA00_0000_0000_0000 | i, &mut rec));
        }
    }

    #[test]
    fn shared_prefix_keys_build_chains() {
        let (mut t, mut rec, mut heap) = setup();
        t.insert(0x1111_1111_1111_1100, &mut rec, &mut heap);
        t.insert(0x1111_1111_1111_1101, &mut rec, &mut heap);
        assert_eq!(t.len(), 2);
        assert!(t.contains(0x1111_1111_1111_1100, &mut rec));
        assert!(t.contains(0x1111_1111_1111_1101, &mut rec));
        assert!(!t.contains(0x1111_1111_1111_1102, &mut rec));
    }

    #[test]
    fn traffic_is_recorded() {
        let (mut t, mut rec, mut heap) = setup();
        for i in 0..1000u64 {
            t.insert(i.wrapping_mul(0x12345679), &mut rec, &mut heap);
        }
        assert!(rec.loads() > 1000);
        assert!(rec.stores() > 1000);
    }
}
