//! STAMP-like synthetic kernels.
//!
//! We do not have Pin or the STAMP binaries; each kernel here reproduces
//! the memory-access *shape* the paper's analysis attributes to the
//! corresponding application (working-set size, read/write mix, sharing
//! and locality) — see DESIGN.md §2 for the substitution argument. All
//! kernels are deterministic given the seed and spread operations
//! round-robin over the logical threads.

use crate::record::{Recorder, ShadowHeap};
use nvsim::addr::{Addr, ThreadId, LINE_BYTES};
use nvsim::rng::Rng64;

/// Parameters shared by every kernel.
#[derive(Clone, Debug)]
pub struct KernelParams {
    /// Logical threads (map 1:1 onto simulated cores).
    pub threads: usize,
    /// Abstract operation count — kernels scale their structures and
    /// iteration counts off this.
    pub ops: u64,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
}

impl KernelParams {
    fn rng(&self, salt: u64) -> Rng64 {
        Rng64::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn thread_of(&self, op: u64) -> ThreadId {
        // Block-wise assignment: threads run streaks of operations (see
        // `suite::OP_BLOCK`); per-op interleaving would over-share.
        ThreadId(((op / crate::suite::OP_BLOCK) % self.threads as u64) as u16)
    }
}

/// Allocates `lines` whole cache lines and returns the base address.
fn alloc_lines(heap: &mut ShadowHeap, lines: u64) -> Addr {
    heap.alloc(lines * LINE_BYTES, LINE_BYTES)
}

fn line_at(base: Addr, i: u64) -> Addr {
    Addr::new(base.raw() + i * LINE_BYTES)
}

/// `kmeans` — streaming clustering.
///
/// Streams a multi-megabyte point array while rewriting a membership
/// array and per-thread partial sums every iteration: far more data is
/// written into the (small) L2s than they can hold, so capacity evictions
/// dominate — the paper's §VII-B analysis of why kmeans favours LLC-based
/// schemes (HW Shadow writes ~70 % less NVM than NVOverlay here).
pub fn kmeans(p: &KernelParams, rec: &mut Recorder, heap: &mut ShadowHeap) {
    let mut rng = p.rng(1);
    let n_points = (p.ops / 3).clamp(1024, 1 << 20);
    let k = 16u64;
    let iters = 3u64;
    let points = alloc_lines(heap, n_points); // one line per point
    let membership = alloc_lines(heap, n_points.div_ceil(8));
    let centroids = alloc_lines(heap, k);
    let partials: Vec<Addr> = (0..p.threads).map(|_| alloc_lines(heap, k)).collect();

    for _it in 0..iters {
        for i in 0..n_points {
            let t = p.thread_of(i);
            rec.set_thread(t);
            rec.load(line_at(points, i));
            // Distance computation reads most centroids.
            for _ in 0..6 {
                rec.load(line_at(centroids, rng.gen_range(0..k)));
            }
            // Assign + accumulate (accumulation batches every few points).
            rec.store(line_at(membership, i / 8));
            if i % 4 == 0 {
                rec.store(line_at(partials[t.index()], rng.gen_range(0..k)));
            }
        }
        // Merge partials into the shared centroids (contended writes).
        for (ti, &part) in partials.iter().enumerate() {
            rec.set_thread(ThreadId(ti as u16));
            for c in 0..k {
                rec.load(line_at(part, c));
                rec.store(line_at(centroids, c));
            }
        }
    }
}

/// `ssca2` — scalable graph kernel.
///
/// Scattered reads of a CSR-ish adjacency structure with scattered
/// single-line property updates across a large array.
pub fn ssca2(p: &KernelParams, rec: &mut Recorder, heap: &mut ShadowHeap) {
    let mut rng = p.rng(2);
    let n_nodes = (p.ops / 8).clamp(1024, 1 << 20);
    let adjacency = alloc_lines(heap, n_nodes * 2);
    let props = alloc_lines(heap, n_nodes);
    for op in 0..p.ops {
        rec.set_thread(p.thread_of(op));
        let u = rng.gen_range(0..n_nodes);
        let v = rng.gen_range(0..n_nodes);
        // Neighbor-list scans dominate the kernel.
        for h in 0..5 {
            rec.load(line_at(adjacency, (u * 2 + h) % (n_nodes * 2)));
        }
        rec.load(line_at(adjacency, v * 2 + 1));
        rec.store(line_at(props, u));
        if rng.gen_bool(0.25) {
            rec.store(line_at(props, v));
        }
    }
}

/// `labyrinth` — parallel maze routing.
///
/// Each routing task copies a window of the shared grid into a private
/// buffer, computes a path privately, and writes the path back to the
/// shared grid — large private write bursts with occasional shared
/// scatter-writes.
pub fn labyrinth(p: &KernelParams, rec: &mut Recorder, heap: &mut ShadowHeap) {
    let mut rng = p.rng(3);
    let grid_lines = 32_768u64.min(p.ops.max(512)); // up to 2 MiB shared grid
    let grid = alloc_lines(heap, grid_lines);
    let privates: Vec<Addr> = (0..p.threads).map(|_| alloc_lines(heap, 512)).collect();
    let tasks = (p.ops / 300).max(4);
    for task in 0..tasks {
        // Tasks are coarse work units (hundreds of accesses); assign them
        // round-robin directly.
        let t = ThreadId((task % p.threads as u64) as u16);
        rec.set_thread(t);
        let window = rng.gen_range(0..grid_lines.saturating_sub(128).max(1));
        let priv_buf = privates[t.index()];
        // Grid scan (reads) with a compact private copy of the region.
        for i in 0..128 {
            rec.load(line_at(grid, window + i));
            if i % 2 == 0 {
                rec.store(line_at(priv_buf, (i / 2) % 512));
            }
        }
        // Private path computation: read-heavy search, modest writes.
        for i in 0..96 {
            rec.load(line_at(priv_buf, rng.gen_range(0..512)));
            if i % 3 == 0 {
                rec.store(line_at(priv_buf, 128 + i % 384));
            }
        }
        // Path write-back: a routed path is a run of contiguous grid
        // cells; write it as two 16-line segments.
        for _ in 0..2 {
            let seg = rng.gen_range(0..grid_lines.saturating_sub(16).max(1));
            rec.store_range(line_at(grid, seg), 16 * LINE_BYTES);
        }
    }
}

/// `bayes` — Bayesian network structure learning.
///
/// Deep pointer chases over a medium-sized tree with sparse writes to
/// score accumulators.
pub fn bayes(p: &KernelParams, rec: &mut Recorder, heap: &mut ShadowHeap) {
    let mut rng = p.rng(4);
    let tree_lines = (p.ops / 4).clamp(1024, 1 << 18);
    let tree = alloc_lines(heap, tree_lines);
    let scores = alloc_lines(heap, 4096);
    let ops = p.ops / 14;
    for op in 0..ops {
        rec.set_thread(p.thread_of(op));
        // Pointer chase ~12 deep.
        let mut cur = rng.gen_range(0..tree_lines);
        for _ in 0..12 {
            rec.load(line_at(tree, cur));
            cur = (cur.wrapping_mul(6364136223846793005).wrapping_add(op)) % tree_lines;
        }
        rec.store(line_at(scores, rng.gen_range(0..4096)));
        if rng.gen_bool(0.25) {
            // ADTree node updates rewrite a whole 256-byte node in a hot
            // subregion of the tree.
            let hot = tree_lines / 8;
            let node = (cur % hot) / 4 * 4;
            rec.store_range(line_at(tree, node), 4 * LINE_BYTES);
        }
    }
}

/// `yada` — Delaunay mesh refinement.
///
/// Cavity retriangulation over a mesh whose elements are *sparsely*
/// scattered across the address space: one or two live lines per 4-KiB
/// page. This is the Fig 13 outlier — per-epoch mapping-table inner
/// nodes stay nearly empty (the paper measures 3.5 % inner occupancy and
/// 19.7 % metadata cost).
pub fn yada(p: &KernelParams, rec: &mut Recorder, heap: &mut ShadowHeap) {
    let mut rng = p.rng(5);
    // Mesh regions: *page-dense* clusters of elements, with the pages
    // themselves scattered widely (~30 pages apart). This reproduces the
    // paper's yada profile: leaf mapping nodes ~94 % full while inner
    // nodes map only ~3.5 % of their slots (Fig 13's 19.7 % outlier).
    let mut region = heap.alloc_sparse(64, 32);
    let mut region_used = 0u64;
    let mut alloc_element = |heap: &mut ShadowHeap, rng: &mut Rng64| -> Addr {
        if region_used >= 60 {
            region = heap.alloc_sparse(64, rng.gen_range(24..40));
            region_used = 0;
        }
        let a = Addr::new(region.raw() + region_used * LINE_BYTES);
        region_used += 1;
        a
    };
    let initial = (p.ops / 12).clamp(256, 1 << 16);
    let mut elements: Vec<Addr> = (0..initial)
        .map(|_| alloc_element(heap, &mut rng))
        .collect();
    let ops = p.ops / 12;
    for op in 0..ops {
        rec.set_thread(p.thread_of(op));
        // Walk the cavity: ~12 scattered element reads.
        for _ in 0..12 {
            let e = elements[rng.gen_range(0..elements.len())];
            rec.load(e);
        }
        // Retriangulate: 2 new elements + 3 neighbour updates.
        for _ in 0..2 {
            let e = alloc_element(heap, &mut rng);
            rec.store(e);
            elements.push(e);
        }
        for _ in 0..3 {
            let e = elements[rng.gen_range(0..elements.len())];
            rec.store(e);
        }
    }
}

/// `intruder` — network intrusion detection.
///
/// Producer/consumer packet queues with highly contended head/tail
/// lines, plus a shared flow table.
pub fn intruder(p: &KernelParams, rec: &mut Recorder, heap: &mut ShadowHeap) {
    let mut rng = p.rng(6);
    let ring_lines = 4096u64;
    let ring = alloc_lines(heap, ring_lines);
    let head = heap.alloc_line();
    let tail = heap.alloc_line();
    let flow_buckets = 4096u64;
    let flows = alloc_lines(heap, flow_buckets);
    let ops = p.ops / 8;
    for op in 0..ops {
        rec.set_thread(p.thread_of(op));
        if op % 2 == 0 {
            // Producer: claim a batch of slots with one tail RMW (real
            // queue implementations amortize the contended counter), then
            // write the packets.
            if op % 16 == 0 {
                rec.load(tail);
                rec.store(tail);
            }
            let slot = rng.gen_range(0..ring_lines);
            rec.store(line_at(ring, slot));
            rec.load(line_at(ring, (slot + 1) % ring_lines));
        } else {
            // Consumer: claim a batch via head, read the packet, update
            // its flow-table entry.
            if op % 16 == 1 {
                rec.load(head);
                rec.store(head);
            }
            let slot = rng.gen_range(0..ring_lines);
            rec.load(line_at(ring, slot));
            // Signature matching: several flow reads per update.
            for _ in 0..3 {
                rec.load(line_at(flows, rng.gen_range(0..flow_buckets)));
            }
            let b = rng.gen_range(0..flow_buckets);
            rec.load(line_at(flows, b));
            if rng.gen_bool(0.5) {
                rec.store(line_at(flows, b));
            }
        }
    }
}

/// `vacation` — travel reservation OLTP.
///
/// Transactions touch several random records across four tables through
/// shallow index chases, updating a couple of them.
pub fn vacation(p: &KernelParams, rec: &mut Recorder, heap: &mut ShadowHeap) {
    let mut rng = p.rng(7);
    // 512-byte reservation records (8 lines each).
    let record_lines = 8u64;
    let records = (p.ops / 64).clamp(256, 1 << 15);
    let tables: Vec<Addr> = (0..4)
        .map(|_| alloc_lines(heap, records * record_lines))
        .collect();
    let index = alloc_lines(heap, records / 4);
    let ops = p.ops / 20;
    for op in 0..ops {
        rec.set_thread(p.thread_of(op));
        // Index chase.
        for _ in 0..8 {
            rec.load(line_at(index, rng.gen_range(0..records / 4)));
        }
        // Read 8 records, rewrite one whole record half the time.
        for i in 0..8 {
            let t = &tables[rng.gen_range(0..4)];
            let r = rng.gen_range(0..records) * record_lines;
            rec.load(line_at(*t, r));
            rec.load(line_at(*t, r + 1));
            if i == 0 && rng.gen_bool(0.5) {
                rec.store_range(line_at(*t, r), record_lines * LINE_BYTES);
            }
        }
    }
}

/// `genome` — gene sequencing.
///
/// Phase 1 deduplicates segments through a shared hash set; phase 2
/// streams the segment array doing mostly-read matching.
pub fn genome(p: &KernelParams, rec: &mut Recorder, heap: &mut ShadowHeap) {
    let mut rng = p.rng(8);
    let buckets = 8_192u64;
    let set = alloc_lines(heap, buckets);
    let segs = (p.ops / 4).clamp(1024, 1 << 19);
    let segments = alloc_lines(heap, segs);
    // Phase 1: dedup inserts (write-heavy on the hash set).
    let phase1 = p.ops / 5;
    for op in 0..phase1 {
        rec.set_thread(p.thread_of(op));
        let b = rng.gen_range(0..buckets);
        rec.load(line_at(set, b));
        rec.load(line_at(set, (b + 1) % buckets));
        if rng.gen_bool(0.3) {
            rec.store(line_at(set, b));
        }
    }
    // Phase 2: streaming matching (read-dominated); matches append to a
    // dense output array.
    let phase2 = p.ops / 3;
    let out = alloc_lines(heap, phase2 / 8 + 1);
    for op in 0..phase2 {
        rec.set_thread(p.thread_of(op));
        let pos = op % segs;
        rec.load(line_at(segments, pos));
        if op % 8 == 0 {
            rec.store(line_at(out, op / 8));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(f: fn(&KernelParams, &mut Recorder, &mut ShadowHeap)) -> (u64, u64, u64) {
        let p = KernelParams {
            threads: 4,
            ops: 20_000,
            seed: 42,
        };
        let mut rec = Recorder::new(p.threads);
        let mut heap = ShadowHeap::new();
        f(&p, &mut rec, &mut heap);
        let (l, s) = (rec.loads(), rec.stores());
        let t = rec.into_trace();
        (l, s, t.write_footprint())
    }

    #[test]
    fn all_kernels_produce_traffic_on_all_threads() {
        for f in [
            kmeans, ssca2, labyrinth, bayes, yada, intruder, vacation, genome,
        ] {
            let p = KernelParams {
                threads: 4,
                ops: 10_000,
                seed: 7,
            };
            let mut rec = Recorder::new(p.threads);
            let mut heap = ShadowHeap::new();
            f(&p, &mut rec, &mut heap);
            assert!(rec.loads() > 0 && rec.stores() > 0);
            let t = rec.into_trace();
            for thread in 0..4 {
                assert!(
                    !t.thread(ThreadId(thread)).is_empty(),
                    "thread {thread} idle"
                );
            }
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        let p = KernelParams {
            threads: 4,
            ops: 5_000,
            seed: 11,
        };
        let mk = || {
            let mut rec = Recorder::new(p.threads);
            let mut heap = ShadowHeap::new();
            ssca2(&p, &mut rec, &mut heap);
            rec.into_trace().access_count()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn kernels_are_read_dominated_like_their_originals() {
        let (gl, gs, _) = run(genome);
        assert!(
            gl > 3 * gs,
            "genome reads dominate: {gl} loads, {gs} stores"
        );
        let (kl, ks, _) = run(kmeans);
        assert!(
            kl > 3 * ks,
            "kmeans distance phase reads dominate: {kl}/{ks}"
        );
        assert!(ks > 0);
    }

    #[test]
    fn yada_write_set_is_page_dense_but_address_sparse() {
        // Yada's profile (paper Fig 13): pages internally dense (~94 %
        // leaf occupancy) but scattered widely (~3.5 % inner occupancy).
        let p = KernelParams {
            threads: 4,
            ops: 20_000,
            seed: 3,
        };
        let mut rec = Recorder::new(p.threads);
        let mut heap = ShadowHeap::new();
        yada(&p, &mut rec, &mut heap);
        let t = rec.into_trace();
        let lines = t.write_footprint();
        let mut pages: Vec<u64> = (0..t.thread_count())
            .flat_map(|i| t.thread(ThreadId(i as u16)).iter())
            .filter_map(|e| match e {
                nvsim::trace::TraceEvent::Access {
                    op: nvsim::memsys::MemOp::Store,
                    addr,
                    ..
                } => Some(addr.page().raw()),
                _ => None,
            })
            .collect();
        pages.sort_unstable();
        pages.dedup();
        let lines_per_page = lines as f64 / pages.len() as f64;
        assert!(
            lines_per_page > 32.0,
            "pages are internally dense: {lines_per_page:.1} lines/page"
        );
        let span = pages.last().unwrap() - pages.first().unwrap() + 1;
        let spread = span as f64 / pages.len() as f64;
        assert!(
            spread > 16.0,
            "pages are scattered widely: {spread:.1} pages of span per used page"
        );
    }

    #[test]
    fn kmeans_membership_rewrites_across_iterations() {
        // The same membership lines are written every iteration: the
        // write footprint is far smaller than total stores.
        let (_, stores, footprint) = run(kmeans);
        assert!(
            stores > 2 * footprint,
            "kmeans rewrites lines across iterations: {stores} stores on {footprint} lines"
        );
    }
}
