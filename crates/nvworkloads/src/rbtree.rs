//! An instrumented red-black tree (the paper's `std::map` workload).
//!
//! Classic parent-pointer red-black tree with one 64-byte shadow node per
//! key — every hop of a descent is exactly one line load, and rebalancing
//! (recolor + rotations) writes a scatter of lines up the tree, matching
//! the pointer-heavy behaviour of `std::map` bulk insertion.

use crate::record::{Recorder, ShadowHeap};
use nvsim::addr::Addr;

#[derive(Debug)]
struct RbNode {
    base: Addr,
    key: u64,
    left: Option<usize>,
    right: Option<usize>,
    parent: Option<usize>,
    red: bool,
}

/// The instrumented red-black tree.
#[derive(Debug, Default)]
pub struct RbTree {
    nodes: Vec<RbNode>,
    root: Option<usize>,
    len: u64,
}

impl RbTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keys stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn touch_r(&self, n: usize, rec: &mut Recorder) {
        rec.load(self.nodes[n].base);
    }

    fn touch_w(&self, n: usize, rec: &mut Recorder) {
        rec.store(self.nodes[n].base);
    }

    /// Looks a key up, recording one load per hop.
    pub fn contains(&self, key: u64, rec: &mut Recorder) -> bool {
        let mut cur = self.root;
        while let Some(n) = cur {
            self.touch_r(n, rec);
            cur = match key.cmp(&self.nodes[n].key) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => self.nodes[n].left,
                std::cmp::Ordering::Greater => self.nodes[n].right,
            };
        }
        false
    }

    /// Inserts a key (duplicates ignored), recording descent, link and
    /// rebalancing traffic.
    pub fn insert(&mut self, key: u64, rec: &mut Recorder, heap: &mut ShadowHeap) {
        // BST insert.
        let mut parent = None;
        let mut cur = self.root;
        while let Some(n) = cur {
            self.touch_r(n, rec);
            parent = Some(n);
            cur = match key.cmp(&self.nodes[n].key) {
                std::cmp::Ordering::Equal => return,
                std::cmp::Ordering::Less => self.nodes[n].left,
                std::cmp::Ordering::Greater => self.nodes[n].right,
            };
        }
        let base = heap.alloc_line();
        let idx = self.nodes.len();
        self.nodes.push(RbNode {
            base,
            key,
            left: None,
            right: None,
            parent,
            red: true,
        });
        rec.store(base);
        match parent {
            None => self.root = Some(idx),
            Some(p) => {
                if key < self.nodes[p].key {
                    self.nodes[p].left = Some(idx);
                } else {
                    self.nodes[p].right = Some(idx);
                }
                self.touch_w(p, rec);
            }
        }
        self.len += 1;
        self.fixup(idx, rec);
    }

    fn is_red(&self, n: Option<usize>) -> bool {
        n.is_some_and(|i| self.nodes[i].red)
    }

    fn grandparent(&self, n: usize) -> Option<usize> {
        self.nodes[n].parent.and_then(|p| self.nodes[p].parent)
    }

    fn uncle(&self, n: usize) -> Option<usize> {
        let p = self.nodes[n].parent?;
        let g = self.nodes[p].parent?;
        if self.nodes[g].left == Some(p) {
            self.nodes[g].right
        } else {
            self.nodes[g].left
        }
    }

    fn fixup(&mut self, mut n: usize, rec: &mut Recorder) {
        while self.is_red(self.nodes[n].parent) {
            let p = self.nodes[n].parent.expect("red parent exists");
            let g = match self.grandparent(n) {
                Some(g) => g,
                None => break,
            };
            self.touch_r(p, rec);
            self.touch_r(g, rec);
            let uncle = self.uncle(n);
            if self.is_red(uncle) {
                let u = uncle.expect("red uncle exists");
                self.nodes[p].red = false;
                self.nodes[u].red = false;
                self.nodes[g].red = true;
                self.touch_w(p, rec);
                self.touch_w(u, rec);
                self.touch_w(g, rec);
                n = g;
            } else {
                let p_is_left = self.nodes[g].left == Some(p);
                let n_is_left = self.nodes[p].left == Some(n);
                match (p_is_left, n_is_left) {
                    (true, false) => {
                        self.rotate_left(p, rec);
                        n = p;
                    }
                    (false, true) => {
                        self.rotate_right(p, rec);
                        n = p;
                    }
                    _ => {}
                }
                let p = self.nodes[n].parent.expect("still has parent");
                let g = self.grandparent(n).expect("still has grandparent");
                self.nodes[p].red = false;
                self.nodes[g].red = true;
                self.touch_w(p, rec);
                self.touch_w(g, rec);
                if self.nodes[g].left == Some(p) {
                    self.rotate_right(g, rec);
                } else {
                    self.rotate_left(g, rec);
                }
            }
        }
        let r = self.root.expect("non-empty after insert");
        if self.nodes[r].red {
            self.nodes[r].red = false;
            self.touch_w(r, rec);
        }
    }

    fn replace_child(&mut self, parent: Option<usize>, old: usize, new: usize, rec: &mut Recorder) {
        match parent {
            None => self.root = Some(new),
            Some(p) => {
                if self.nodes[p].left == Some(old) {
                    self.nodes[p].left = Some(new);
                } else {
                    self.nodes[p].right = Some(new);
                }
                self.touch_w(p, rec);
            }
        }
        self.nodes[new].parent = parent;
    }

    fn rotate_left(&mut self, n: usize, rec: &mut Recorder) {
        let r = self.nodes[n].right.expect("rotate_left needs right child");
        let rl = self.nodes[r].left;
        self.nodes[n].right = rl;
        if let Some(c) = rl {
            self.nodes[c].parent = Some(n);
            self.touch_w(c, rec);
        }
        let p = self.nodes[n].parent;
        self.replace_child(p, n, r, rec);
        self.nodes[r].left = Some(n);
        self.nodes[n].parent = Some(r);
        self.touch_w(n, rec);
        self.touch_w(r, rec);
    }

    fn rotate_right(&mut self, n: usize, rec: &mut Recorder) {
        let l = self.nodes[n].left.expect("rotate_right needs left child");
        let lr = self.nodes[l].right;
        self.nodes[n].left = lr;
        if let Some(c) = lr {
            self.nodes[c].parent = Some(n);
            self.touch_w(c, rec);
        }
        let p = self.nodes[n].parent;
        self.replace_child(p, n, l, rec);
        self.nodes[l].right = Some(n);
        self.nodes[n].parent = Some(l);
        self.touch_w(n, rec);
        self.touch_w(l, rec);
    }

    /// Black-height validity check (testing aid): returns the black
    /// height if the red-black invariants hold.
    pub fn check_invariants(&self) -> Option<usize> {
        fn walk(t: &RbTree, n: Option<usize>) -> Option<usize> {
            let Some(i) = n else { return Some(1) };
            let node = &t.nodes[i];
            if node.red && (t.is_red(node.left) || t.is_red(node.right)) {
                return None; // red-red violation
            }
            let lh = walk(t, node.left)?;
            let rh = walk(t, node.right)?;
            if lh != rh {
                return None; // black-height violation
            }
            Some(lh + usize::from(!node.red))
        }
        if self.is_red(self.root) {
            return None;
        }
        walk(self, self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (RbTree, Recorder, ShadowHeap) {
        (RbTree::new(), Recorder::new(1), ShadowHeap::new())
    }

    #[test]
    fn insert_lookup_and_invariants() {
        let (mut t, mut rec, mut heap) = setup();
        let keys: Vec<u64> = (0..2000u64)
            .map(|i| i.wrapping_mul(48271) % 100_000)
            .collect();
        for &k in &keys {
            t.insert(k, &mut rec, &mut heap);
            debug_assert!(t.check_invariants().is_some());
        }
        assert!(t.check_invariants().is_some(), "red-black invariants hold");
        for &k in &keys {
            assert!(t.contains(k, &mut rec));
        }
        assert!(!t.contains(100_001, &mut rec));
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        let (mut t, mut rec, mut heap) = setup();
        for k in 0..4096u64 {
            t.insert(k, &mut rec, &mut heap);
        }
        let bh = t.check_invariants().expect("valid tree");
        assert!(bh <= 14, "black height bounded: {bh}");
        // A descent's recorded loads stay logarithmic.
        let before = rec.loads();
        t.contains(4095, &mut rec);
        assert!(rec.loads() - before <= 26);
    }

    #[test]
    fn rebalancing_records_scattered_writes() {
        let (mut t, mut rec, mut heap) = setup();
        for k in 0..1000u64 {
            t.insert(k, &mut rec, &mut heap);
        }
        // Sequential insertion into an RB tree forces constant
        // rotations: far more stores than one per insert.
        assert!(rec.stores() > 2000, "stores: {}", rec.stores());
    }
}
