//! The version-tagged cache hierarchy — NVOverlay's modified access
//! protocol (paper §IV).
//!
//! Structurally identical to `nvsim`'s baseline hierarchy (private L1s,
//! per-VD inclusive L2s, distributed non-inclusive LLC slices, sparse
//! directory), but every L1/L2 line carries an OID tag and a *persisted*
//! bit, and the eviction paths implement the Version Access Protocol:
//!
//! * **Store-eviction** (§IV-A1): a store hitting a dirty, unpersisted
//!   version of an older epoch first pushes that version into the L2, then
//!   completes in place under the current epoch.
//! * **Version PUTX** (§IV-A2): when an L1 version lands on an older dirty
//!   L2 version, the L2 version is evicted to the OMC first.
//! * **External downgrade** (§IV-A3, Fig 5): the newest version is
//!   deposited in the LLC and persisted; an older L2 version goes to the
//!   OMC *only* (it is not the current memory image — optimization 1).
//! * **External invalidation** (§IV-A3, Fig 6): the newest version moves
//!   cache-to-cache to the requestor without touching LLC or OMC
//!   (optimization 2); its persistence obligation travels with it. Older
//!   versions go to the OMC.
//! * **Epoch synchronization** (§IV-B2): every response carries the line's
//!   OID as its RV; a VD observing an RV newer than its epoch stalls,
//!   dumps context, and advances (Lamport clock).
//! * **Tag walker** (§IV-C): persists dirty versions older than the VD's
//!   current epoch and reports `min-ver` to the OMC.
//! * **Wrap-around** (§IV-D): when a VD's epoch crosses between the two
//!   16-bit groups, lines still tagged in the newly-entered group are
//!   flushed out of the hierarchy before the tags are recycled, and DRAM
//!   tags of that group are scrubbed.
//!
//! ### Modeling notes
//!
//! The hardware encodes "this version has reached the OMC" as the M→E
//! downgrade performed by the tag walker. We track the same fact in an
//! explicit `persisted` bit and keep the MESI dirty bit for the DRAM
//! working-copy chain; the two encodings are behaviourally equivalent and
//! the bit keeps the DRAM image exact in simulation.
//!
//! The hierarchy is *mechanism only*: versions leaving a VD surface as
//! [`CstEvent::Version`] events / return values; `NvOverlaySystem` routes
//! them to the MNM backend and charges NVM time.

use crate::epoch::{Epoch, HALF_SPACE};
use nvsim::addr::{Addr, CoreId, LineAddr, Token, VdId};
use nvsim::cache::CacheArray;
use nvsim::clock::Cycle;
use nvsim::config::SimConfig;
use nvsim::directory::Directory;
use nvsim::dram::Dram;
use nvsim::memsys::MemOp;
use nvsim::mesi::{MesiState, Permission};
use nvsim::noc::{MsgKind, Noc};
use nvsim::stats::{AccessCounters, EvictReason};
use std::sync::Arc;

/// CST-specific tuning knobs on top of [`SimConfig`].
#[derive(Clone, Debug)]
pub struct CstConfig {
    /// Cycles a VD's cores stall to drain queues at an epoch advance.
    pub epoch_advance_stall: Cycle,
    /// Bytes of processor context dumped per core at an epoch advance.
    pub context_bytes_per_core: u64,
    /// Absolute epoch the system starts in (useful to exercise 16-bit
    /// wrap-around in tests; clamped to at least 1).
    pub initial_epoch: u64,
}

impl Default for CstConfig {
    fn default() -> Self {
        Self {
            epoch_advance_stall: 30,
            context_bytes_per_core: 256,
            initial_epoch: 1,
        }
    }
}

/// A dirty version leaving its Versioned Domain, bound for the OMC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VersionOut {
    /// The line.
    pub line: LineAddr,
    /// The version's content.
    pub token: Token,
    /// Absolute epoch of the version (reconstructed from the 16-bit tag).
    pub abs_epoch: u64,
    /// Why it left.
    pub reason: EvictReason,
}

/// What caused an epoch advance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvanceCause {
    /// The per-VD store budget was exhausted.
    StoreBudget,
    /// A coherence response carried a newer epoch (Lamport sync).
    CoherenceSync,
    /// The workload requested a boundary (`TraceEvent::EpochMark`).
    ExplicitMark,
    /// Final drain at the end of a run.
    Finish,
}

/// Events produced by an access (drained by the system each access).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CstEvent {
    /// A version left a VD and must be persisted by the OMC.
    Version(VersionOut),
    /// A VD advanced its epoch. The system dumps core contexts.
    EpochAdvanced {
        /// The VD that advanced.
        vd: VdId,
        /// Epoch before.
        from_abs: u64,
        /// Epoch after.
        to_abs: u64,
        /// Why.
        cause: AdvanceCause,
    },
    /// An *unpersisted* version moved cache-to-cache into `vd`
    /// (optimization 2): the receiving L2 controller refreshes its
    /// `min-ver` at the OMC with the version's epoch, otherwise the
    /// recoverable epoch could advance past an obligation that changed
    /// hands between two walks.
    DirtyTransfer {
        /// The VD that now holds the obligation.
        vd: VdId,
        /// The version's epoch.
        abs_epoch: u64,
    },
}

/// Per-line L1/L2 metadata of the versioned hierarchy.
#[derive(Clone, Copy, Debug)]
struct VLine {
    state: MesiState,
    token: Token,
    oid: Epoch,
    /// This copy's version has already been handed to the OMC.
    persisted: bool,
}

impl VLine {
    fn unpersisted_version(&self) -> bool {
        self.state.is_dirty() && !self.persisted
    }
}

/// Per-line LLC metadata (no version protocol below the VDs, §IV-A4; the
/// OID rides along so responses can carry RV and DRAM tags stay fresh).
#[derive(Clone, Copy, Debug)]
struct VLlcLine {
    token: Token,
    oid: Epoch,
    /// Newer than the DRAM working copy.
    dirty: bool,
}

/// Result of a directory transaction.
#[derive(Clone, Copy, Debug)]
struct FetchResult {
    token: Token,
    /// Absolute epoch the response's RV denotes.
    rv_abs: u64,
    state: MesiState,
    /// The fetched copy is newer than the DRAM working copy.
    dram_dirty: bool,
    /// The fetched copy's version has already been handed to the OMC
    /// (false only for a C2C-transferred unpersisted version).
    persisted: bool,
}

/// The CST versioned hierarchy.
pub struct VersionedHierarchy {
    cfg: Arc<SimConfig>,
    cst: CstConfig,
    l1s: Vec<CacheArray<VLine>>,
    l2s: Vec<CacheArray<VLine>>,
    llc: Vec<CacheArray<VLlcLine>>,
    dir: Directory,
    noc: Noc,
    dram: Dram,
    vd_abs: Vec<u64>,
    store_counts: Vec<u64>,
    counters: AccessCounters,
    events: Vec<CstEvent>,
    wrap_flushes: u64,
}

impl VersionedHierarchy {
    /// Builds the hierarchy.
    ///
    /// # Panics
    /// Panics if `cfg` does not validate.
    pub fn new(cfg: &SimConfig, cst: CstConfig) -> Self {
        Self::new_shared(Arc::new(cfg.clone()), cst)
    }

    /// Builds the hierarchy sharing an already-wrapped configuration.
    ///
    /// # Panics
    /// Panics if `cfg` does not validate.
    pub fn new_shared(cfg: Arc<SimConfig>, cst: CstConfig) -> Self {
        cfg.validate().expect("invalid SimConfig");
        let vds = cfg.vd_count() as usize;
        let slices = cfg.llc_slices as u64;
        let slice_sets = cfg.llc_slice_bytes() / (nvsim::addr::LINE_BYTES * cfg.llc.ways as u64);
        let initial = cst.initial_epoch.max(1);
        Self {
            cst,
            l1s: (0..cfg.cores as usize)
                .map(|_| CacheArray::from_params(&cfg.l1))
                .collect(),
            l2s: (0..vds).map(|_| CacheArray::from_params(&cfg.l2)).collect(),
            llc: (0..slices)
                .map(|_| CacheArray::with_stride(slice_sets, cfg.llc.ways, slices))
                .collect(),
            dir: Directory::new(),
            noc: Noc::new(cfg.noc_hop_latency),
            dram: Dram::new(cfg.dram_latency, cfg.dram_oid_superblock_lines),
            vd_abs: vec![initial; vds],
            store_counts: vec![0; vds],
            counters: AccessCounters::default(),
            events: Vec::new(),
            wrap_flushes: 0,
            cfg,
        }
    }

    /// The simulator configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The shared configuration handle.
    pub fn config_shared(&self) -> &Arc<SimConfig> {
        &self.cfg
    }

    /// The CST configuration in force.
    pub fn cst_config(&self) -> &CstConfig {
        &self.cst
    }

    /// The VD a core belongs to.
    pub fn vd_of(&self, core: CoreId) -> VdId {
        VdId(core.0 / self.cfg.cores_per_vd)
    }

    /// A VD's current absolute epoch.
    pub fn epoch_abs(&self, vd: VdId) -> u64 {
        self.vd_abs[vd.index()]
    }

    /// A VD's current 16-bit epoch tag.
    pub fn epoch_tag(&self, vd: VdId) -> Epoch {
        Epoch::from_abs(self.vd_abs[vd.index()])
    }

    /// Access counters.
    pub fn counters(&self) -> &AccessCounters {
        &self.counters
    }

    /// The NoC (traffic accounting).
    pub fn noc(&self) -> &Noc {
        &self.noc
    }

    /// The DRAM working memory.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Group-crossing wrap flushes performed so far.
    pub fn wrap_flushes(&self) -> u64 {
        self.wrap_flushes
    }

    /// Publishes CST-side metrics under `prefix`: per-VD epoch gauges,
    /// wrap flushes, NoC message counts, and DRAM OID footprint.
    pub fn metrics_into(&self, reg: &mut nvsim::metrics::Registry, prefix: &str) {
        let p = |s: &str| format!("{prefix}.{s}");
        reg.set_counter(&p("wrap_flushes"), self.wrap_flushes);
        for vd in 0..self.cfg.vd_count() {
            reg.set_gauge(
                &p(&format!("vd{vd}.epoch_abs")),
                self.vd_abs[vd as usize] as f64,
            );
        }
        for kind in MsgKind::ALL {
            reg.set_counter(&p(&format!("noc.{kind}")), self.noc.count(kind));
        }
        reg.set_counter(&p("noc.total"), self.noc.total());
        reg.set_counter(&p("dram.reads"), self.dram.reads());
        reg.set_counter(&p("dram.oid_tags"), self.dram.oid_tag_count() as u64);
    }

    /// Events produced since the last [`VersionedHierarchy::take_events`].
    pub fn events(&self) -> &[CstEvent] {
        &self.events
    }

    /// Drains the event buffer (system-side consumption).
    pub fn take_events(&mut self) -> Vec<CstEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drains the event buffer into `buf` by swapping — the hot-path
    /// variant of [`VersionedHierarchy::take_events`]: the consumer hands
    /// back its (cleared) scratch vector so neither side reallocates.
    pub fn swap_events(&mut self, buf: &mut Vec<CstEvent>) {
        debug_assert!(buf.is_empty(), "swap_events expects a cleared buffer");
        std::mem::swap(&mut self.events, buf);
    }

    fn slice_of(&self, line: LineAddr) -> usize {
        (line.raw() % self.cfg.llc_slices as u64) as usize
    }

    fn local_cores(&self, vd: VdId) -> std::ops::Range<u16> {
        let base = vd.0 * self.cfg.cores_per_vd;
        base..base + self.cfg.cores_per_vd
    }

    /// Reconstructs a line tag into an absolute epoch relative to the VD
    /// currently holding the line.
    fn abs_of(&self, tag: Epoch, vd: VdId) -> u64 {
        crate::epoch::reconstruct_abs(tag, self.vd_abs[vd.index()])
    }

    fn emit_version(&mut self, line: LineAddr, token: Token, abs_epoch: u64, reason: EvictReason) {
        self.events.push(CstEvent::Version(VersionOut {
            line,
            token,
            abs_epoch,
            reason,
        }));
    }

    // ---------------------------------------------------------------
    // Epoch management
    // ---------------------------------------------------------------

    /// Advances `vd` to absolute epoch `to`. Returns the stall charged to
    /// the VD's in-flight access.
    fn advance_epoch(&mut self, vd: VdId, to: u64, cause: AdvanceCause) -> Cycle {
        let from = self.vd_abs[vd.index()];
        debug_assert!(to > from, "epochs only move forward");
        if from / HALF_SPACE != to / HALF_SPACE {
            self.wrap_flush(to);
        }
        self.vd_abs[vd.index()] = to;
        self.store_counts[vd.index()] = 0;
        self.events.push(CstEvent::EpochAdvanced {
            vd,
            from_abs: from,
            to_abs: to,
            cause,
        });
        self.cst.epoch_advance_stall
    }

    /// Advances a VD's epoch by one for an explicit mark or the system's
    /// policy. Returns the stall.
    pub fn advance_epoch_explicit(&mut self, vd: VdId, cause: AdvanceCause) -> Cycle {
        let to = self.vd_abs[vd.index()] + 1;
        self.advance_epoch(vd, to, cause)
    }

    /// Synchronizes `vd` to a response's RV if newer (Lamport rule).
    /// Spurious "future" RVs from stale DRAM tags are clamped to the
    /// system-wide maximum epoch: causality guarantees no genuine RV can
    /// exceed the epoch of the VD that produced it.
    fn sync_epoch(&mut self, vd: VdId, rv_abs: u64) -> Cycle {
        let cur = self.vd_abs[vd.index()];
        let max_abs = self.vd_abs.iter().copied().max().unwrap_or(cur);
        let to = rv_abs.min(max_abs);
        if to > cur {
            return self.advance_epoch(vd, to, AdvanceCause::CoherenceSync);
        }
        0
    }

    /// §IV-D group flush: before epochs enter a recycled half-space
    /// generation, every cache line still tagged in that half-space is
    /// flushed out of the hierarchy (unpersisted versions to the OMC,
    /// dirty data home to DRAM), and DRAM tags of the group are scrubbed.
    fn wrap_flush(&mut self, entering_abs: u64) {
        self.wrap_flushes += 1;
        let entering_group = Epoch::from_abs(entering_abs).group();
        // A tag in the entering group is, by the invariant this flush
        // maintains, from that group's *previous* generation: resolve it
        // strictly into the past (the normal ±half-space reconstruction
        // would read it as "future").
        let gen_base = entering_abs >> 16 << 16;
        let stale_abs = |tag: Epoch| {
            let cand = gen_base + tag.raw() as u64;
            if cand >= entering_abs {
                cand.saturating_sub(1 << 16)
            } else {
                cand
            }
        };
        for vdix in 0..self.l2s.len() {
            let vd = VdId(vdix as u16);
            // Collect lines where the L2 copy or any L1 copy is tagged in
            // the entering group; flush the whole line out of the VD.
            let mut stale: Vec<LineAddr> =
                self.l2s[vdix].lines_where(|_, m| m.oid.group() == entering_group);
            for c in self.local_cores(vd) {
                for l in self.l1s[c as usize].lines_where(|_, m| m.oid.group() == entering_group) {
                    if !stale.contains(&l) {
                        stale.push(l);
                    }
                }
            }
            for line in stale {
                for c in self.local_cores(vd) {
                    if let Some(m) = self.l1s[c as usize].remove(line) {
                        if m.unpersisted_version() {
                            let abs = stale_abs(m.oid);
                            self.emit_version(line, m.token, abs, EvictReason::EpochFlush);
                        }
                        if m.state.is_dirty() {
                            self.dram.write(line, m.token);
                        }
                    }
                }
                if let Some(m) = self.l2s[vdix].remove(line) {
                    if m.unpersisted_version() {
                        let abs = stale_abs(m.oid);
                        self.emit_version(line, m.token, abs, EvictReason::EpochFlush);
                    }
                    if m.state.is_dirty() {
                        self.dram.write(line, m.token);
                    }
                }
                self.dir.remove_node(line, vd.0);
            }
        }
        for s in 0..self.llc.len() {
            let stale: Vec<LineAddr> =
                self.llc[s].lines_where(|_, m| m.oid.group() == entering_group);
            for line in stale {
                let m = self.llc[s].remove(line).expect("listed");
                if m.dirty {
                    self.dram.write(line, m.token);
                }
            }
        }
        let boundary = Epoch::from_abs(entering_abs / HALF_SPACE * HALF_SPACE);
        self.dram
            .scrub_oids(|t| Epoch(t).group() == entering_group, boundary.raw());
    }

    // ---------------------------------------------------------------
    // Access path
    // ---------------------------------------------------------------

    /// Performs one access. Returns `(latency, persist_stall_within,
    /// value)` — the value loaded or stored; version evictions and epoch
    /// advances appear in [`VersionedHierarchy::take_events`].
    pub fn access(
        &mut self,
        core: CoreId,
        op: MemOp,
        addr: Addr,
        token: Token,
    ) -> (Cycle, Cycle, Token) {
        let line = addr.line();
        let vd = self.vd_of(core);
        let perm = match op {
            MemOp::Load => Permission::Read,
            MemOp::Store => Permission::Write,
        };
        match op {
            MemOp::Load => self.counters.loads += 1,
            MemOp::Store => self.counters.stores += 1,
        }
        let mut lat = self.cfg.l1.latency;
        let mut stall = 0;

        if self.cfg.replay_fast_path {
            // Single-probe L1 fast path. A store hitting a writable line
            // whose version is same-epoch (or persisted/clean — no
            // store-eviction possible) updates the slot in place with the
            // one `get_mut` probe; the reference path probes three times
            // (`get` + `commit_store`'s `peek` + `peek_mut`). Stores that
            // DO need the §IV-A1 store-eviction fall through to the
            // reference `commit_store`. Observable state (counters, LRU,
            // events, store budget, epoch advances) is identical.
            let cur_tag = Epoch::from_abs(self.vd_abs[vd.index()]);
            let mut committed = false;
            let mut needs_reference_commit = false;
            if let Some(l) = self.l1s[core.index()].get_mut(line) {
                if perm.satisfied_by(l.state) {
                    self.counters.l1_hits += 1;
                    if op == MemOp::Store {
                        debug_assert!(l.state.is_writable(), "store commit requires M/E");
                        if l.oid == cur_tag || !l.unpersisted_version() {
                            l.token = token;
                            l.oid = cur_tag;
                            l.state = MesiState::M;
                            l.persisted = false;
                            committed = true;
                        } else {
                            needs_reference_commit = true;
                        }
                    } else {
                        return (lat, 0, l.token);
                    }
                }
            }
            if committed {
                let sc = &mut self.store_counts[vd.index()];
                *sc += 1;
                if *sc >= self.cfg.epoch_size_stores {
                    let to = self.vd_abs[vd.index()] + 1;
                    stall += self.advance_epoch(vd, to, AdvanceCause::StoreBudget);
                }
                return (lat + stall, stall, token);
            }
            if needs_reference_commit {
                stall += self.commit_store(core, vd, line, token);
                return (lat + stall, stall, token);
            }
        } else {
            // Reference path: L1 hit with sufficient permission.
            if let Some((state, value)) =
                self.l1s[core.index()].get(line).map(|l| (l.state, l.token))
            {
                if perm.satisfied_by(state) {
                    self.counters.l1_hits += 1;
                    if op == MemOp::Store {
                        stall += self.commit_store(core, vd, line, token);
                        return (lat + stall, stall, token);
                    }
                    return (lat + stall, stall, value);
                }
            }
        }

        lat += self.cfg.l2.latency;
        let (extra, sync_stall) = self.ensure_l2(vd, line, perm);
        lat += extra;
        stall += sync_stall;

        lat += self.resolve_sibling_l1s(core, vd, line, op);
        // After a load-resolve, siblings retain S copies: the new fill
        // must then also be S (granting E beside a live sharer would let
        // a later store skip the sibling invalidation).
        let sibling_retains = op == MemOp::Load
            && self
                .local_cores(vd)
                .any(|c| c != core.0 && self.l1s[c as usize].contains(line));

        // Fill or upgrade the L1 from the L2.
        let l2_meta = *self.l2s[vd.index()]
            .peek(line)
            .expect("L2 holds the line after ensure_l2 (inclusion)");
        let fill_state = match op {
            MemOp::Load if sibling_retains => MesiState::S,
            MemOp::Load => match l2_meta.state {
                MesiState::M | MesiState::E => MesiState::E,
                // The L2 keeps the dirty Owned version; L1s read Shared.
                MesiState::S | MesiState::O => MesiState::S,
                MesiState::I => unreachable!("ensure_l2 grants at least S"),
            },
            MemOp::Store => MesiState::E,
        };
        match self.l1s[core.index()].peek_mut(line) {
            Some(l) => {
                debug_assert!(!l.state.is_dirty(), "upgrades start from a clean state");
                l.state = fill_state;
                l.token = l2_meta.token;
                l.oid = l2_meta.oid;
                l.persisted = true;
            }
            None => {
                // The L1 fill mirrors the L2's data; the L2 keeps version
                // custody, so the L1 copy starts "persisted".
                let fill = VLine {
                    state: fill_state,
                    token: l2_meta.token,
                    oid: l2_meta.oid,
                    persisted: true,
                };
                if let Some((vline, vmeta)) = self.l1s[core.index()].insert(line, fill) {
                    self.l1_evict(vd, vline, vmeta);
                }
            }
        }

        if op == MemOp::Store {
            stall += self.commit_store(core, vd, line, token);
            return (lat + stall, stall, token);
        }
        (lat + stall, stall, l2_meta.token)
    }

    /// Retires a store into an L1 line with write permission, applying the
    /// version access protocol (§IV-A1).
    fn commit_store(&mut self, core: CoreId, vd: VdId, line: LineAddr, token: Token) -> Cycle {
        let cur_tag = self.epoch_tag(vd);
        let meta = *self.l1s[core.index()]
            .peek(line)
            .expect("store commit requires a resident L1 line");
        debug_assert!(meta.state.is_writable(), "store commit requires M/E");

        if meta.unpersisted_version() && meta.oid != cur_tag {
            // Immutable old version: store-eviction into the L2 first.
            self.putx_to_l2(vd, line, meta.token, meta.oid, EvictReason::StoreEviction);
        }
        let l = self.l1s[core.index()].peek_mut(line).expect("resident");
        l.token = token;
        l.oid = cur_tag;
        l.state = MesiState::M;
        l.persisted = false;

        let sc = &mut self.store_counts[vd.index()];
        *sc += 1;
        if *sc >= self.cfg.epoch_size_stores {
            let to = self.vd_abs[vd.index()] + 1;
            return self.advance_epoch(vd, to, AdvanceCause::StoreBudget);
        }
        0
    }

    /// Folds a version coming down from an L1 into the L2 (§IV-A2 PUTX):
    /// if the L2 holds an *older unpersisted* version, that version is
    /// evicted to the OMC before being overwritten.
    fn putx_to_l2(
        &mut self,
        vd: VdId,
        line: LineAddr,
        token: Token,
        oid: Epoch,
        reason: EvictReason,
    ) {
        let l2 = self.l2s[vd.index()]
            .peek_mut(line)
            .expect("inclusion: L2 must hold every L1 line");
        debug_assert!(
            !l2.state.is_dirty() || oid.at_least(l2.oid),
            "L1 versions are never older than the L2 version (§IV-A2 invariant)"
        );
        let displaced = if l2.unpersisted_version() && oid != l2.oid {
            Some((l2.token, l2.oid))
        } else {
            None
        };
        l2.token = token;
        l2.oid = oid;
        l2.state = MesiState::M;
        l2.persisted = false;
        if let Some((dtok, doid)) = displaced {
            let dabs = self.abs_of(doid, vd);
            self.emit_version(line, dtok, dabs, reason);
        }
    }

    /// Handles an L1 capacity eviction.
    fn l1_evict(&mut self, vd: VdId, line: LineAddr, meta: VLine) {
        if !meta.state.is_dirty() {
            return;
        }
        if meta.unpersisted_version() {
            self.putx_to_l2(vd, line, meta.token, meta.oid, EvictReason::CapacityMiss);
        } else {
            // Persisted but DRAM-dirty: fold data into the L2 copy.
            let l2 = self.l2s[vd.index()]
                .peek_mut(line)
                .expect("inclusion: L2 must hold every L1 line");
            if meta.oid.at_least(l2.oid) {
                l2.token = meta.token;
                l2.oid = meta.oid;
                l2.state = MesiState::M;
                l2.persisted = true;
            }
        }
    }

    /// Invalidates/downgrades sibling L1 copies within the VD.
    fn resolve_sibling_l1s(&mut self, core: CoreId, vd: VdId, line: LineAddr, op: MemOp) -> Cycle {
        let mut lat = 0;
        for c in self.local_cores(vd) {
            if c == core.0 {
                continue;
            }
            let ci = c as usize;
            if !self.l1s[ci].contains(line) {
                continue;
            }
            lat += self.cfg.l1.latency;
            let meta = *self.l1s[ci].peek(line).expect("probed present");
            if meta.state.is_dirty() {
                if meta.unpersisted_version() {
                    let reason = match op {
                        MemOp::Store => EvictReason::CoherenceInvalidation,
                        MemOp::Load => EvictReason::CoherenceDowngrade,
                    };
                    // Intra-VD transfer: the version moves to the L2 (it
                    // stays inside the VD, so no OMC write — unless it
                    // displaces an older L2 version).
                    self.putx_to_l2(vd, line, meta.token, meta.oid, reason);
                } else {
                    let l2 = self.l2s[vd.index()].peek_mut(line).expect("inclusion");
                    if meta.oid.at_least(l2.oid) {
                        l2.token = meta.token;
                        l2.oid = meta.oid;
                        l2.state = MesiState::M;
                        l2.persisted = true;
                    }
                }
            }
            match op {
                MemOp::Store => {
                    self.l1s[ci].remove(line);
                }
                MemOp::Load => {
                    let l = self.l1s[ci].peek_mut(line).expect("probed present");
                    l.state = MesiState::S;
                    l.persisted = true;
                }
            }
        }
        lat
    }

    /// Ensures the VD's L2 holds `line` with `perm`. Returns
    /// `(extra latency, epoch-sync stall)`.
    fn ensure_l2(&mut self, vd: VdId, line: LineAddr, perm: Permission) -> (Cycle, Cycle) {
        if let Some(l2) = self.l2s[vd.index()].get(line) {
            if perm.satisfied_by(l2.state) {
                self.counters.l2_hits += 1;
                return (0, 0);
            }
        }
        let mut lat = self.cfg.llc.latency;
        lat += match perm {
            Permission::Read => self.noc.send(MsgKind::GetS),
            Permission::Write => self.noc.send(MsgKind::GetX),
        };

        let fetch = match perm {
            Permission::Write => self.dir_getx(vd, line, &mut lat),
            Permission::Read => self.dir_gets(vd, line, &mut lat),
        };

        // Coherence-driven epoch update (§IV-B2) before the line installs.
        let stall = self.sync_epoch(vd, fetch.rv_abs);
        let rv = Epoch::from_abs(fetch.rv_abs);
        if fetch.state == MesiState::M && !fetch.persisted {
            // A persistence obligation arrived via C2C transfer.
            self.events.push(CstEvent::DirtyTransfer {
                vd,
                abs_epoch: fetch.rv_abs,
            });
        }

        match self.l2s[vd.index()].peek_mut(line) {
            Some(l) => {
                debug_assert!(
                    !l.state.is_dirty() || l.state == MesiState::O,
                    "upgrades start from a clean or Owned state"
                );
                l.state = fetch.state;
                l.token = fetch.token;
                l.oid = rv;
                l.persisted = fetch.persisted;
            }
            None => {
                let fill = VLine {
                    state: fetch.state,
                    token: fetch.token,
                    oid: rv,
                    persisted: fetch.persisted,
                };
                if let Some((vline, vmeta)) = self.l2s[vd.index()].insert(line, fill) {
                    self.l2_capacity_evict(vd, vline, vmeta);
                }
            }
        }
        // A dirty fetched copy must keep M so the DRAM chain stays exact.
        if fetch.dram_dirty {
            let l = self.l2s[vd.index()].peek_mut(line).expect("installed");
            l.state = MesiState::M;
        }
        (lat, stall)
    }

    /// Directory GETX (§IV-A3/Fig 6, optimization 2): the newest version
    /// moves cache-to-cache with its persistence obligation; older
    /// versions in the previous owner are evicted to the OMC.
    fn dir_getx(&mut self, vd: VdId, line: LineAddr, lat: &mut Cycle) -> FetchResult {
        let entry = self.dir.entry(line).copied();
        if let Some(e) = entry {
            if let Some(owner) = e.owner() {
                if owner != vd.0 {
                    // Under MOESI the Owned line may have plain sharers
                    // too — invalidate them alongside.
                    for sh in e.sharers_except(vd.0) {
                        if sh == owner {
                            continue;
                        }
                        *lat += self.noc.send(MsgKind::FwdGetX);
                        self.noc.send(MsgKind::InvAck);
                        self.invalidate_vd_clean(VdId(sh), line);
                        self.dir.remove_node(line, sh);
                    }
                    *lat += self.noc.send(MsgKind::FwdGetX);
                    *lat += self.cfg.l2.latency;
                    let (token, abs, dirty, persisted) =
                        self.strip_vd_for_invalidation(VdId(owner), line);
                    *lat += self.noc.send(MsgKind::CacheToCache);
                    self.dir.remove_node(line, owner);
                    self.dir.set_owner(line, vd.0);
                    let s = self.slice_of(line);
                    let llc_dirty = self.llc[s].remove(line).is_some_and(|m| m.dirty);
                    return FetchResult {
                        token,
                        rv_abs: abs,
                        state: if dirty || llc_dirty {
                            MesiState::M
                        } else {
                            MesiState::E
                        },
                        dram_dirty: dirty || llc_dirty,
                        persisted,
                    };
                }
                // We already own it (the MOESI O→M upgrade): invalidate
                // the other sharers; the version and its persistence
                // custody stay in place.
                for sh in e.sharers_except(vd.0) {
                    *lat += self.noc.send(MsgKind::FwdGetX);
                    self.noc.send(MsgKind::InvAck);
                    self.invalidate_vd_clean(VdId(sh), line);
                    self.dir.remove_node(line, sh);
                }
                self.dir.set_owner(line, vd.0);
                let l2 = self.l2s[vd.index()].peek(line).expect("owner holds line");
                let dirty = l2.state.is_dirty();
                return FetchResult {
                    token: l2.token,
                    rv_abs: self.abs_of(l2.oid, vd),
                    state: if dirty { MesiState::M } else { MesiState::E },
                    dram_dirty: dirty,
                    persisted: l2.persisted,
                };
            }
            for sh in e.sharers_except(vd.0) {
                *lat += self.noc.send(MsgKind::FwdGetX);
                self.noc.send(MsgKind::InvAck);
                self.invalidate_vd_clean(VdId(sh), line);
                self.dir.remove_node(line, sh);
            }
            let own = self.l2s[vd.index()].peek(line).map(|o| (o.token, o.oid));
            let s = self.slice_of(line);
            let llc_copy = self.llc[s].remove(line);
            let (token, abs, dirty) = if let Some(c) = llc_copy {
                self.counters.llc_hits += 1;
                (c.token, self.abs_of(c.oid, vd), c.dirty)
            } else if let Some((t, oid)) = own {
                (t, self.abs_of(oid, vd), false)
            } else {
                *lat += self.dram.latency();
                self.counters.mem_fetches += 1;
                let t = self.dram.read(line);
                let oid = self.dram.oid(line).map(Epoch).unwrap_or(Epoch(0));
                (t, self.abs_of(oid, vd), false)
            };
            self.dir.remove_node(line, vd.0);
            self.dir.set_owner(line, vd.0);
            return FetchResult {
                token,
                rv_abs: abs,
                state: if dirty { MesiState::M } else { MesiState::E },
                dram_dirty: dirty,
                persisted: true,
            };
        }
        let s = self.slice_of(line);
        let llc_copy = self.llc[s].remove(line);
        let (token, abs, dirty) = if let Some(c) = llc_copy {
            self.counters.llc_hits += 1;
            (c.token, self.abs_of(c.oid, vd), c.dirty)
        } else {
            *lat += self.dram.latency();
            self.counters.mem_fetches += 1;
            let t = self.dram.read(line);
            let oid = self.dram.oid(line).map(Epoch).unwrap_or(Epoch(0));
            (t, self.abs_of(oid, vd), false)
        };
        self.dir.set_owner(line, vd.0);
        FetchResult {
            token,
            rv_abs: abs,
            state: if dirty { MesiState::M } else { MesiState::E },
            dram_dirty: dirty,
            persisted: true,
        }
    }

    /// Directory GETS (§IV-A3/Fig 5, optimization 1): the newest version
    /// lands in the LLC and is persisted; an older L2 version is persisted
    /// without touching the LLC.
    fn dir_gets(&mut self, vd: VdId, line: LineAddr, lat: &mut Cycle) -> FetchResult {
        let entry = self.dir.entry(line).copied();
        if let Some(e) = entry {
            if let Some(owner) = e.owner() {
                debug_assert_ne!(owner, vd.0, "self-owned lines hit in ensure_l2");
                *lat += self.noc.send(MsgKind::FwdGetS);
                *lat += self.cfg.l2.latency;
                if self.cfg.protocol == nvsim::config::Protocol::Moesi {
                    // MOESI: the newest version stays Owned (and possibly
                    // unpersisted) in the owner — no LLC deposit, no OMC
                    // write. Only an older displaced L2 version is
                    // persisted (inside the helper).
                    let (token, abs) = self.downgrade_vd_moesi(VdId(owner), line);
                    *lat += self.noc.send(MsgKind::CacheToCache);
                    self.dir.add_sharer_keep_owner(line, vd.0);
                    return FetchResult {
                        token,
                        rv_abs: abs,
                        state: MesiState::S,
                        dram_dirty: false,
                        persisted: true,
                    };
                }
                let (token, abs, was_dirty) = self.downgrade_vd(VdId(owner), line);
                *lat += self.noc.send(MsgKind::Data);
                if was_dirty {
                    self.llc_install(
                        line,
                        VLlcLine {
                            token,
                            oid: Epoch::from_abs(abs),
                            dirty: true,
                        },
                    );
                }
                self.dir.downgrade_owner(line);
                self.dir.add_sharer(line, vd.0);
                return FetchResult {
                    token,
                    rv_abs: abs,
                    state: MesiState::S,
                    dram_dirty: false,
                    persisted: true,
                };
            }
            let s = self.slice_of(line);
            let (token, abs) = if let Some(c) = self.llc[s].get(line).map(|c| (c.token, c.oid)) {
                self.counters.llc_hits += 1;
                (c.0, self.abs_of(c.1, vd))
            } else {
                *lat += self.dram.latency();
                self.counters.mem_fetches += 1;
                let t = self.dram.read(line);
                let oid = self.dram.oid(line).map(Epoch).unwrap_or(Epoch(0));
                (t, self.abs_of(oid, vd))
            };
            self.dir.add_sharer(line, vd.0);
            return FetchResult {
                token,
                rv_abs: abs,
                state: MesiState::S,
                dram_dirty: false,
                persisted: true,
            };
        }
        let s = self.slice_of(line);
        let (token, abs) = if let Some(c) = self.llc[s].get(line).map(|c| (c.token, c.oid)) {
            self.counters.llc_hits += 1;
            (c.0, self.abs_of(c.1, vd))
        } else {
            *lat += self.dram.latency();
            self.counters.mem_fetches += 1;
            let t = self.dram.read(line);
            let oid = self.dram.oid(line).map(Epoch).unwrap_or(Epoch(0));
            (t, self.abs_of(oid, vd))
        };
        self.dir.set_owner(line, vd.0);
        FetchResult {
            token,
            rv_abs: abs,
            state: MesiState::E,
            dram_dirty: false,
            persisted: true,
        }
    }

    /// External invalidation of `vd`'s copies (Fig 6). Returns the newest
    /// version `(token, abs, dirty, persisted)` for the C2C transfer;
    /// older unpersisted versions are evicted to the OMC.
    fn strip_vd_for_invalidation(&mut self, vd: VdId, line: LineAddr) -> (Token, u64, bool, bool) {
        let l2meta = self.l2s[vd.index()]
            .remove(line)
            .expect("directory says the VD caches the line");
        let mut newest_token = l2meta.token;
        let mut newest_oid = l2meta.oid;
        let mut newest_dirty = l2meta.state.is_dirty();
        let mut newest_persisted = l2meta.persisted;
        let mut older: Option<(Token, Epoch)> = None;

        for c in self.local_cores(vd) {
            if let Some(m) = self.l1s[c as usize].remove(line) {
                if m.state.is_dirty() && m.oid.newer_than(newest_oid) {
                    if l2meta.unpersisted_version() {
                        older = Some((l2meta.token, l2meta.oid));
                    }
                    newest_token = m.token;
                    newest_oid = m.oid;
                    newest_dirty = true;
                    newest_persisted = m.persisted;
                } else if m.state.is_dirty() && m.oid == newest_oid {
                    newest_token = m.token;
                    newest_dirty = true;
                    newest_persisted = newest_persisted && m.persisted;
                }
            }
        }
        if let Some((t, oid)) = older {
            let abs = self.abs_of(oid, vd);
            self.emit_version(line, t, abs, EvictReason::CoherenceInvalidation);
        }
        let abs = self.abs_of(newest_oid, vd);
        (
            newest_token,
            abs,
            newest_dirty,
            newest_persisted || !newest_dirty,
        )
    }

    /// External downgrade of `vd`'s copies (Fig 5). The newest version is
    /// persisted to the OMC and returned; an older L2 version is persisted
    /// without an LLC write (optimization 1).
    fn downgrade_vd(&mut self, vd: VdId, line: LineAddr) -> (Token, u64, bool) {
        let l2meta = *self.l2s[vd.index()]
            .peek(line)
            .expect("directory says the VD caches the line");
        let mut newest_token = l2meta.token;
        let mut newest_oid = l2meta.oid;
        let mut newest_unpersisted = l2meta.unpersisted_version();
        let mut newest_dirty = l2meta.state.is_dirty();
        let mut older: Option<(Token, Epoch)> = None;

        for c in self.local_cores(vd) {
            if let Some(m) = self.l1s[c as usize].peek_mut(line) {
                if m.state.is_dirty() && m.oid.newer_than(newest_oid) {
                    if l2meta.unpersisted_version() {
                        older = Some((l2meta.token, l2meta.oid));
                    }
                    newest_token = m.token;
                    newest_oid = m.oid;
                    newest_unpersisted = !m.persisted;
                    newest_dirty = true;
                } else if m.state.is_dirty() && m.oid == newest_oid {
                    newest_token = m.token;
                    newest_unpersisted = newest_unpersisted || !m.persisted;
                    newest_dirty = true;
                }
                m.state = MesiState::S;
                m.persisted = true;
                m.token = newest_token;
                m.oid = newest_oid;
            }
        }
        if let Some((t, oid)) = older {
            let abs = self.abs_of(oid, vd);
            self.emit_version(line, t, abs, EvictReason::CoherenceDowngrade);
        }
        let abs = self.abs_of(newest_oid, vd);
        if newest_unpersisted {
            self.emit_version(line, newest_token, abs, EvictReason::CoherenceDowngrade);
        }
        let l2 = self.l2s[vd.index()].peek_mut(line).expect("resident");
        l2.token = newest_token;
        l2.oid = newest_oid;
        l2.state = MesiState::S;
        l2.persisted = true;
        (newest_token, abs, newest_dirty)
    }

    /// MOESI downgrade (versioned): the newest version folds into the L2
    /// as Owned — it keeps both its dirty data and, if unpersisted, its
    /// persistence custody. An older displaced L2 version is evicted to
    /// the OMC. Returns the newest `(token, abs_epoch)` for the response.
    fn downgrade_vd_moesi(&mut self, vd: VdId, line: LineAddr) -> (Token, u64) {
        let l2meta = *self.l2s[vd.index()]
            .peek(line)
            .expect("directory says the VD caches the line");
        let mut newest_token = l2meta.token;
        let mut newest_oid = l2meta.oid;
        let mut newest_persisted = l2meta.persisted;
        let mut newest_dirty = l2meta.state.is_dirty();
        let mut older: Option<(Token, Epoch)> = None;

        for c in self.local_cores(vd) {
            if let Some(m) = self.l1s[c as usize].peek_mut(line) {
                if m.state.is_dirty() && m.oid.newer_than(newest_oid) {
                    if l2meta.unpersisted_version() {
                        older = Some((l2meta.token, l2meta.oid));
                    }
                    newest_token = m.token;
                    newest_oid = m.oid;
                    newest_persisted = m.persisted;
                    newest_dirty = true;
                } else if m.state.is_dirty() && m.oid == newest_oid {
                    newest_token = m.token;
                    newest_persisted = newest_persisted && m.persisted;
                    newest_dirty = true;
                }
                m.state = MesiState::S;
                m.persisted = true;
                m.token = newest_token;
                m.oid = newest_oid;
            }
        }
        if let Some((t, oid)) = older {
            let abs = self.abs_of(oid, vd);
            self.emit_version(line, t, abs, EvictReason::CoherenceDowngrade);
        }
        let l2 = self.l2s[vd.index()].peek_mut(line).expect("resident");
        l2.token = newest_token;
        l2.oid = newest_oid;
        l2.state = if newest_dirty {
            MesiState::O
        } else {
            MesiState::S
        };
        l2.persisted = if newest_dirty { newest_persisted } else { true };
        let abs = self.abs_of(newest_oid, vd);
        (newest_token, abs)
    }

    /// Invalidates a clean shared copy.
    fn invalidate_vd_clean(&mut self, vd: VdId, line: LineAddr) {
        self.l2s[vd.index()].remove(line);
        for c in self.local_cores(vd) {
            self.l1s[c as usize].remove(line);
        }
    }

    /// Handles an L2 capacity eviction (§IV-A2): dirty versions go to the
    /// LLC *and*, if unpersisted, to the OMC via the LLC-bypass path.
    fn l2_capacity_evict(&mut self, vd: VdId, line: LineAddr, meta: VLine) {
        let mut newest_token = meta.token;
        let mut newest_oid = meta.oid;
        let mut newest_unpersisted = meta.unpersisted_version();
        let mut newest_dirty = meta.state.is_dirty();
        let mut older: Option<(Token, Epoch)> = None;

        for c in self.local_cores(vd) {
            if let Some(m) = self.l1s[c as usize].remove(line) {
                if m.state.is_dirty() && m.oid.newer_than(newest_oid) {
                    if meta.unpersisted_version() {
                        older = Some((meta.token, meta.oid));
                    }
                    newest_token = m.token;
                    newest_oid = m.oid;
                    newest_unpersisted = !m.persisted;
                    newest_dirty = true;
                } else if m.state.is_dirty() && m.oid == newest_oid {
                    newest_token = m.token;
                    newest_unpersisted = newest_unpersisted || !m.persisted;
                    newest_dirty = true;
                }
            }
        }
        self.dir.remove_node(line, vd.0);
        self.noc.send(MsgKind::PutX);
        if let Some((t, oid)) = older {
            let abs = self.abs_of(oid, vd);
            self.emit_version(line, t, abs, EvictReason::CapacityMiss);
        }
        if newest_unpersisted {
            let abs = self.abs_of(newest_oid, vd);
            self.noc.send(MsgKind::OmcEvict);
            self.emit_version(line, newest_token, abs, EvictReason::CapacityMiss);
        }
        self.llc_install(
            line,
            VLlcLine {
                token: newest_token,
                oid: newest_oid,
                dirty: newest_dirty,
            },
        );
    }

    /// Installs a line into its LLC slice; dirty victims go home to DRAM
    /// (their versions were persisted when they left their VD, §IV-A4).
    fn llc_install(&mut self, line: LineAddr, meta: VLlcLine) {
        let s = self.slice_of(line);
        if let Some(existing) = self.llc[s].peek_mut(line) {
            if meta.dirty {
                *existing = meta;
            }
            return;
        }
        if let Some((vline, vmeta)) = self.llc[s].insert(line, meta) {
            if vmeta.dirty {
                self.dram.write(vline, vmeta.token);
                let raw = vmeta.oid.raw();
                self.dram
                    .update_oid(vline, raw, |a, b| Epoch(a).newer_than(Epoch(b)));
            }
        }
    }

    // ---------------------------------------------------------------
    // Tag walker (§IV-C) and drain
    // ---------------------------------------------------------------

    /// Runs the VD's tag walker: every unpersisted dirty version older
    /// than the VD's current epoch is handed to the OMC (returned) and
    /// marked persisted. Returns `(versions, min_ver)`, `min_ver` being
    /// the smallest absolute epoch still unpersisted afterwards (the VD's
    /// current epoch when nothing older remains).
    pub fn tag_walk(&mut self, vd: VdId) -> (Vec<VersionOut>, u64) {
        let cur_tag = self.epoch_tag(vd);
        let cur_abs = self.vd_abs[vd.index()];
        let mut out = Vec::new();

        let l2_old: Vec<LineAddr> =
            self.l2s[vd.index()].lines_where(|_, m| m.unpersisted_version() && m.oid != cur_tag);
        for line in l2_old {
            let m = self.l2s[vd.index()].peek_mut(line).expect("listed");
            m.persisted = true;
            let (t, oid) = (m.token, m.oid);
            out.push(VersionOut {
                line,
                token: t,
                abs_epoch: crate::epoch::reconstruct_abs(oid, cur_abs),
                reason: EvictReason::TagWalk,
            });
        }
        // The hardware walker is L2-level; the VD's few L1s are probed too
        // so min-ver is exact (see DESIGN.md §6).
        for c in self.local_cores(vd) {
            let ci = c as usize;
            let l1_old: Vec<LineAddr> =
                self.l1s[ci].lines_where(|_, m| m.unpersisted_version() && m.oid != cur_tag);
            for line in l1_old {
                let m = self.l1s[ci].peek_mut(line).expect("listed");
                m.persisted = true;
                let (t, oid) = (m.token, m.oid);
                out.push(VersionOut {
                    line,
                    token: t,
                    abs_epoch: crate::epoch::reconstruct_abs(oid, cur_abs),
                    reason: EvictReason::TagWalk,
                });
            }
        }
        let min_ver = self.min_unpersisted(vd).unwrap_or(cur_abs);
        (out, min_ver)
    }

    /// Smallest absolute epoch of any unpersisted version in the VD.
    pub fn min_unpersisted(&self, vd: VdId) -> Option<u64> {
        let cur_abs = self.vd_abs[vd.index()];
        let mut min: Option<u64> = None;
        let mut consider = |oid: Epoch| {
            let abs = crate::epoch::reconstruct_abs(oid, cur_abs);
            min = Some(min.map_or(abs, |m: u64| m.min(abs)));
        };
        for (_, m) in self.l2s[vd.index()].iter() {
            if m.unpersisted_version() {
                consider(m.oid);
            }
        }
        for c in self.local_cores(vd) {
            for (_, m) in self.l1s[c as usize].iter() {
                if m.unpersisted_version() {
                    consider(m.oid);
                }
            }
        }
        min
    }

    /// Final drain: advances every VD one epoch and persists *all*
    /// unpersisted versions (including current-epoch ones). Dirty data
    /// also goes home to DRAM. Returns the persisted versions.
    pub fn drain(&mut self) -> Vec<VersionOut> {
        let mut out = Vec::new();
        for vdix in 0..self.l2s.len() {
            let vd = VdId(vdix as u16);
            let to = self.vd_abs[vdix] + 1;
            self.advance_epoch(vd, to, AdvanceCause::Finish);
            let (walked, _) = self.tag_walk(vd);
            // End-of-run drain traffic is attributed to `Drain`, not the
            // walker, so eviction-reason decompositions (Fig 15) are not
            // polluted by the shutdown flush.
            out.extend(walked.into_iter().map(|v| VersionOut {
                reason: EvictReason::Drain,
                ..v
            }));
            debug_assert_eq!(self.min_unpersisted(vd), None, "drain walked everything");
        }
        for core in 0..self.l1s.len() {
            let vd = VdId(core as u16 / self.cfg.cores_per_vd);
            let dirty: Vec<LineAddr> = self.l1s[core].lines_where(|_, m| m.state.is_dirty());
            for line in dirty {
                let m = *self.l1s[core].peek(line).expect("listed");
                let l2 = self.l2s[vd.index()].peek_mut(line).expect("inclusion");
                if m.oid.at_least(l2.oid) {
                    l2.token = m.token;
                    l2.oid = m.oid;
                    l2.state = MesiState::M;
                    l2.persisted = true;
                }
                self.l1s[core].peek_mut(line).expect("listed").state = MesiState::E;
            }
        }
        for vdix in 0..self.l2s.len() {
            let dirty: Vec<LineAddr> = self.l2s[vdix].lines_where(|_, m| m.state.is_dirty());
            for line in dirty {
                let m = self.l2s[vdix].peek_mut(line).expect("listed");
                m.state = if m.state == MesiState::O {
                    MesiState::S
                } else {
                    MesiState::E
                };
                let (t, oid) = (m.token, m.oid);
                // Reconcile any stale LLC copy: the owning VD's data is
                // authoritative (a dirty LLC copy can survive an E-grant
                // fetch that was silently upgraded, and must not regress
                // the DRAM image in the pass below).
                let s = self.slice_of(line);
                if let Some(c) = self.llc[s].peek_mut(line) {
                    c.token = t;
                    c.oid = oid;
                    c.dirty = false;
                }
                self.dram.write(line, t);
                self.dram
                    .update_oid(line, oid.raw(), |a, b| Epoch(a).newer_than(Epoch(b)));
            }
        }
        for s in 0..self.llc.len() {
            let dirty: Vec<LineAddr> = self.llc[s].lines_where(|_, m| m.dirty);
            for line in dirty {
                let m = self.llc[s].peek_mut(line).expect("listed");
                m.dirty = false;
                let (t, oid) = (m.token, m.oid);
                self.dram.write(line, t);
                self.dram
                    .update_oid(line, oid.raw(), |a, b| Epoch(a).newer_than(Epoch(b)));
            }
        }
        out
    }

    /// Debug: human-readable state of every copy of `line` (tests only).
    pub fn debug_line_state(&self, line: LineAddr) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, l1) in self.l1s.iter().enumerate() {
            if let Some(m) = l1.peek(line) {
                let _ = write!(
                    out,
                    "L1[{}]:{}/{}{} ",
                    i,
                    m.state,
                    m.oid.raw(),
                    if m.persisted { "P" } else { "U" }
                );
            }
        }
        for (i, l2) in self.l2s.iter().enumerate() {
            if let Some(m) = l2.peek(line) {
                let _ = write!(
                    out,
                    "L2[{}]:{}/{}{} ",
                    i,
                    m.state,
                    m.oid.raw(),
                    if m.persisted { "P" } else { "U" }
                );
            }
        }
        let s = self.slice_of(line);
        if let Some(m) = self.llc[s].peek(line) {
            let _ = write!(
                out,
                "LLC:{}/{} ",
                m.oid.raw(),
                if m.dirty { "D" } else { "C" }
            );
        }
        let _ = write!(out, "dram:{}", self.dram.peek(line));
        out
    }

    /// The newest visible content of a line anywhere (verification).
    pub fn newest_token(&self, line: LineAddr) -> Token {
        let mut best: Option<(Epoch, Token)> = None;
        let mut consider = |oid: Epoch, tok: Token| match best {
            None => best = Some((oid, tok)),
            Some((boid, _)) if oid.newer_than(boid) => best = Some((oid, tok)),
            _ => {}
        };
        for l1 in &self.l1s {
            if let Some(m) = l1.peek(line) {
                if m.state.is_dirty() {
                    consider(m.oid, m.token);
                }
            }
        }
        for l2 in &self.l2s {
            if let Some(m) = l2.peek(line) {
                if m.state.is_dirty() {
                    consider(m.oid, m.token);
                }
            }
        }
        let s = self.slice_of(line);
        if let Some(m) = self.llc[s].peek(line) {
            if m.dirty {
                consider(m.oid, m.token);
            }
        }
        best.map(|(_, t)| t).unwrap_or_else(|| self.dram.peek(line))
    }

    /// Installs a cross-island line at its DRAM home during a sharded
    /// replay barrier (see `nvsim::shard`). Returns `true` if the token
    /// was written. If any CST level still holds the line, the island's
    /// own versioned copy is authoritative and the import is skipped —
    /// the overlay chain and OID tags stay exactly as the island's
    /// local trace produced them.
    pub fn import_line(&mut self, line: LineAddr, token: Token) -> bool {
        if self.l1s.iter().any(|c| c.peek(line).is_some())
            || self.l2s.iter().any(|c| c.peek(line).is_some())
            || self.llc[self.slice_of(line)].peek(line).is_some()
        {
            return false;
        }
        self.dram.write(line, token);
        true
    }

    /// Batched [`VersionedHierarchy::import_line`] over one window's
    /// sorted exchange run (see `nvsim::shard`): one pass, own-island
    /// entries skipped inline, applied deposits mirrored into `golden`.
    pub fn import_lines(
        &mut self,
        entries: &[nvsim::shard::ExchangeEntry],
        island: u16,
        golden: &mut nvsim::fastmap::FastMap<LineAddr, Token>,
    ) -> u64 {
        let mut applied = 0;
        for e in entries {
            if e.src == island {
                continue;
            }
            if self.l1s.iter().any(|c| c.peek(e.line).is_some())
                || self.l2s.iter().any(|c| c.peek(e.line).is_some())
                || self.llc[self.slice_of(e.line)].peek(e.line).is_some()
            {
                continue;
            }
            self.dram.write(e.line, e.token);
            golden.insert(e.line, e.token);
            applied += 1;
        }
        applied
    }
}

impl VersionedHierarchy {
    /// Invariant 1 + 2: inclusion and L1-not-older-than-L2 (§IV-A2).
    pub(crate) fn check_inclusion_and_order(
        &self,
        out: &mut Vec<super::invariants::InvariantViolation>,
    ) {
        use super::invariants::InvariantViolation as V;
        for core in 0..self.l1s.len() {
            let vd = core / self.cfg.cores_per_vd as usize;
            for (line, m) in self.l1s[core].iter() {
                match self.l2s[vd].peek(line) {
                    None => out.push(V::InclusionBroken {
                        core: core as u16,
                        line,
                    }),
                    Some(l2) => {
                        if l2.oid.newer_than(m.oid) {
                            out.push(V::VersionOrderBroken {
                                core: core as u16,
                                line,
                                l1_oid: m.oid.raw(),
                                l2_oid: l2.oid.raw(),
                            });
                        }
                    }
                }
            }
        }
    }

    /// Invariant 3: single writer per VD; exclusivity across VDs.
    pub(crate) fn check_writers(&self, out: &mut Vec<super::invariants::InvariantViolation>) {
        use super::invariants::InvariantViolation as V;
        use std::collections::HashMap;
        // Per line: which VDs hold copies, and whether their L2 is M/E.
        let mut holders: HashMap<LineAddr, Vec<(u16, bool)>> = HashMap::new();
        for (vdix, l2) in self.l2s.iter().enumerate() {
            for (line, m) in l2.iter() {
                holders
                    .entry(line)
                    .or_default()
                    .push((vdix as u16, m.state.is_writable()));
            }
        }
        for (line, hs) in &holders {
            if let Some((w, _)) = hs.iter().find(|(_, writable)| *writable) {
                if let Some((o, _)) = hs.iter().find(|(v, _)| v != w) {
                    out.push(V::WritableShared {
                        line: *line,
                        writer_vd: *w,
                        other_vd: *o,
                    });
                }
            }
        }
        // At most one dirty (M or O) L2 copy of a line system-wide.
        let mut dirty_l2: HashMap<LineAddr, Vec<u16>> = HashMap::new();
        for (vdix, l2) in self.l2s.iter().enumerate() {
            for (line, m) in l2.iter() {
                if m.state.is_dirty() {
                    dirty_l2.entry(line).or_default().push(vdix as u16);
                }
            }
        }
        for (line, vds) in dirty_l2 {
            if vds.len() > 1 {
                out.push(V::WritableShared {
                    line,
                    writer_vd: vds[0],
                    other_vd: vds[1],
                });
            }
        }
        // Within each VD: at most one dirty L1 copy of a line.
        for vd in 0..self.l2s.len() {
            let mut dirty_seen: HashMap<LineAddr, u32> = HashMap::new();
            for c in self.local_cores(VdId(vd as u16)) {
                for (line, m) in self.l1s[c as usize].iter() {
                    if m.state.is_dirty() {
                        *dirty_seen.entry(line).or_default() += 1;
                    }
                }
            }
            for (line, n) in dirty_seen {
                if n > 1 {
                    out.push(V::MultipleWriters {
                        vd: vd as u16,
                        line,
                    });
                }
            }
        }
    }

    /// Invariant 4 + 5: every cached tag reconstructs at or before its
    /// VD's current epoch (and hence within the half-space window).
    pub(crate) fn check_tag_windows(&self, out: &mut Vec<super::invariants::InvariantViolation>) {
        use super::invariants::InvariantViolation as V;
        for (vdix, cur_abs) in self.vd_abs.iter().enumerate() {
            let cur = Epoch::from_abs(*cur_abs);
            let check = |line: LineAddr, oid: Epoch, out: &mut Vec<_>| {
                if oid.newer_than(cur) {
                    out.push(V::FutureVersion {
                        vd: vdix as u16,
                        line,
                        oid: oid.raw(),
                        cur: cur.raw(),
                    });
                }
            };
            for (line, m) in self.l2s[vdix].iter() {
                check(line, m.oid, out);
            }
            for c in self.local_cores(VdId(vdix as u16)) {
                for (line, m) in self.l1s[c as usize].iter() {
                    check(line, m.oid, out);
                }
            }
        }
        // LLC tags must be at or before the global maximum epoch.
        let max_abs = self.vd_abs.iter().copied().max().unwrap_or(1);
        let max_tag = Epoch::from_abs(max_abs);
        for slice in &self.llc {
            for (line, m) in slice.iter() {
                if m.oid.newer_than(max_tag) {
                    out.push(V::FutureVersion {
                        vd: u16::MAX,
                        line,
                        oid: m.oid.raw(),
                        cur: max_tag.raw(),
                    });
                }
            }
        }
    }
}

impl std::fmt::Debug for VersionedHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedHierarchy")
            .field("cores", &self.cfg.cores)
            .field("vds", &self.cfg.vd_count())
            .field("epochs", &self.vd_abs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SimConfig {
        SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(1_000_000)
            .build()
            .unwrap()
    }

    fn hier() -> VersionedHierarchy {
        VersionedHierarchy::new(&small_cfg(), CstConfig::default())
    }

    fn addr(line: u64) -> Addr {
        Addr::new(line * 64)
    }

    fn versions(h: &mut VersionedHierarchy) -> Vec<VersionOut> {
        h.take_events()
            .into_iter()
            .filter_map(|e| match e {
                CstEvent::Version(v) => Some(v),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn store_in_same_epoch_updates_in_place() {
        let mut h = hier();
        h.access(CoreId(0), MemOp::Store, addr(1), 10);
        h.access(CoreId(0), MemOp::Store, addr(1), 11);
        assert!(
            versions(&mut h).is_empty(),
            "same-epoch rewrite is in place"
        );
        assert_eq!(h.newest_token(LineAddr::new(1)), 11);
    }

    #[test]
    fn store_after_epoch_advance_store_evicts_old_version() {
        let mut h = hier();
        h.access(CoreId(0), MemOp::Store, addr(1), 10);
        h.advance_epoch_explicit(VdId(0), AdvanceCause::ExplicitMark);
        h.take_events();
        // Old version @e1 is dirty & unpersisted: the store pushes it to L2
        // (intra-VD, no OMC write yet).
        h.access(CoreId(0), MemOp::Store, addr(1), 20);
        assert!(versions(&mut h).is_empty(), "version moved L1→L2 only");
        // A second advance + store displaces the L2 version to the OMC.
        h.advance_epoch_explicit(VdId(0), AdvanceCause::ExplicitMark);
        h.take_events();
        h.access(CoreId(0), MemOp::Store, addr(1), 30);
        let v = versions(&mut h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].token, 10, "epoch-1 version displaced to OMC");
        assert_eq!(v[0].abs_epoch, 1);
        assert_eq!(v[0].reason, EvictReason::StoreEviction);
        assert_eq!(h.newest_token(LineAddr::new(1)), 30);
    }

    #[test]
    fn tag_walker_persists_old_versions_and_reports_min_ver() {
        let mut h = hier();
        h.access(CoreId(0), MemOp::Store, addr(1), 10);
        h.access(CoreId(0), MemOp::Store, addr(2), 20);
        assert_eq!(h.min_unpersisted(VdId(0)), Some(1));
        h.advance_epoch_explicit(VdId(0), AdvanceCause::ExplicitMark);
        h.take_events();
        let (walked, min_ver) = h.tag_walk(VdId(0));
        assert_eq!(walked.len(), 2);
        assert!(walked.iter().all(|v| v.abs_epoch == 1));
        assert!(walked.iter().all(|v| v.reason == EvictReason::TagWalk));
        assert_eq!(min_ver, 2, "nothing older than the current epoch remains");
        // Second walk finds nothing.
        let (walked2, _) = h.tag_walk(VdId(0));
        assert!(walked2.is_empty());
        // Data is still cached and current.
        assert_eq!(h.newest_token(LineAddr::new(1)), 10);
    }

    #[test]
    fn remote_load_downgrade_persists_newest_version() {
        let mut h = hier();
        h.access(CoreId(0), MemOp::Store, addr(5), 50);
        h.take_events();
        h.access(CoreId(2), MemOp::Load, addr(5), 0);
        let v = versions(&mut h);
        assert_eq!(v.len(), 1, "downgrade persists the version once");
        assert_eq!(v[0].token, 50);
        assert_eq!(v[0].reason, EvictReason::CoherenceDowngrade);
        // Walker afterwards has nothing to do for that line.
        h.advance_epoch_explicit(VdId(0), AdvanceCause::ExplicitMark);
        h.take_events();
        let (walked, _) = h.tag_walk(VdId(0));
        assert!(walked.is_empty());
    }

    #[test]
    fn remote_store_c2c_transfers_obligation_without_omc_write() {
        let mut h = hier();
        h.access(CoreId(0), MemOp::Store, addr(5), 50);
        h.take_events();
        // Remote store: optimization 2 — no OMC write; the version and its
        // persistence obligation move to VD 1.
        h.access(CoreId(2), MemOp::Store, addr(5), 60);
        let v = versions(&mut h);
        assert!(v.is_empty(), "C2C invalidation must not write the OMC");
        // The obligation now sits in VD 1: epoch sync made VD 1's epoch
        // match, and the (overwritten) version is current-epoch.
        assert_eq!(h.newest_token(LineAddr::new(5)), 60);
        assert_eq!(h.min_unpersisted(VdId(1)), Some(h.epoch_abs(VdId(1))));
    }

    #[test]
    fn epoch_syncs_on_reading_future_data() {
        let cfg = small_cfg();
        let mut h = VersionedHierarchy::new(&cfg, CstConfig::default());
        // VD 0 advances to epoch 5.
        for _ in 0..4 {
            h.advance_epoch_explicit(VdId(0), AdvanceCause::ExplicitMark);
        }
        assert_eq!(h.epoch_abs(VdId(0)), 5);
        h.access(CoreId(0), MemOp::Store, addr(9), 99);
        h.take_events();
        assert_eq!(h.epoch_abs(VdId(1)), 1);
        // VD 1 reads the epoch-5 line: Lamport sync to 5.
        let (_lat, _stall, v) = h.access(CoreId(2), MemOp::Load, addr(9), 0);
        assert_eq!(v, 99, "reader sees the future epoch's value");
        assert_eq!(h.epoch_abs(VdId(1)), 5);
        let advanced = h.take_events().into_iter().any(|e| {
            matches!(
                e,
                CstEvent::EpochAdvanced {
                    vd: VdId(1),
                    to_abs: 5,
                    cause: AdvanceCause::CoherenceSync,
                    ..
                }
            )
        });
        assert!(advanced);
    }

    #[test]
    fn epoch_advances_on_store_budget() {
        let cfg = SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(3)
            .build()
            .unwrap();
        let mut h = VersionedHierarchy::new(&cfg, CstConfig::default());
        for i in 0..7 {
            h.access(CoreId(0), MemOp::Store, addr(i), i + 1);
        }
        assert_eq!(
            h.epoch_abs(VdId(0)),
            3,
            "two budget advances after 7 stores"
        );
        assert_eq!(h.epoch_abs(VdId(1)), 1, "VD 1 did not store");
    }

    #[test]
    fn capacity_eviction_sends_unpersisted_version_to_omc_and_llc() {
        let mut h = hier();
        // L2 is 64 lines; write 200 distinct lines from one core.
        for i in 0..200 {
            h.access(CoreId(0), MemOp::Store, addr(i), 1000 + i);
        }
        let v = versions(&mut h);
        assert!(!v.is_empty(), "L2 capacity evictions persist versions");
        assert!(v.iter().all(|x| x.reason == EvictReason::CapacityMiss));
        // All data still reachable.
        for i in 0..200 {
            assert_eq!(h.newest_token(LineAddr::new(i)), 1000 + i, "line {i}");
        }
    }

    #[test]
    fn drain_persists_everything_and_updates_dram() {
        let mut h = hier();
        for i in 0..50 {
            h.access(CoreId((i % 4) as u16), MemOp::Store, addr(i), 500 + i);
        }
        h.take_events();
        let drained = h.drain();
        // Every line's final version must be persisted by *someone*
        // (either an earlier coherence/capacity event or the drain).
        for vd in 0..2 {
            assert_eq!(h.min_unpersisted(VdId(vd)), None);
        }
        assert!(!drained.is_empty());
        for i in 0..50 {
            assert_eq!(h.dram().peek(LineAddr::new(i)), 500 + i, "line {i}");
        }
    }

    #[test]
    fn wrap_around_group_flush_fires_and_preserves_data() {
        // A line written at a Lower-group epoch must be flushed out of the
        // hierarchy when epochs re-enter the Lower group one full 16-bit
        // wrap later (its tag would otherwise alias as "new").
        let cfg = small_cfg();
        let cst = CstConfig {
            initial_epoch: 2,
            ..CstConfig::default()
        };
        let mut h = VersionedHierarchy::new(&cfg, cst);
        h.access(CoreId(0), MemOp::Store, addr(1), 10);
        h.take_events();

        let mut flushed = Vec::new();
        // Advance VD 0 through two group crossings (into Upper at 32768,
        // back into Lower at 65536).
        while h.epoch_abs(VdId(0)) < 2 * HALF_SPACE + 1 {
            h.advance_epoch_explicit(VdId(0), AdvanceCause::ExplicitMark);
            for e in h.take_events() {
                if let CstEvent::Version(v) = e {
                    if v.reason == EvictReason::EpochFlush {
                        flushed.push(v);
                    }
                }
            }
            if h.epoch_abs(VdId(0)) == HALF_SPACE + 5 {
                // While in the Upper group the Lower-tagged line is still
                // resident and current.
                assert_eq!(h.wrap_flushes(), 1);
                assert_eq!(h.newest_token(LineAddr::new(1)), 10);
                assert!(flushed.is_empty(), "nothing tagged Upper existed");
            }
        }
        assert_eq!(h.wrap_flushes(), 2);
        assert_eq!(flushed.len(), 1, "the old Lower-group version flushed");
        assert_eq!(flushed[0].token, 10);
        assert_eq!(flushed[0].abs_epoch, 2);
        // The data survived the flush (home in DRAM) and stays readable.
        assert_eq!(h.newest_token(LineAddr::new(1)), 10);
        // New stores after the wrap work normally.
        h.access(CoreId(0), MemOp::Store, addr(3), 30);
        assert_eq!(h.newest_token(LineAddr::new(3)), 30);
    }

    #[test]
    fn functional_correctness_mixed_sharing() {
        let mut h = hier();
        let mut model = std::collections::HashMap::new();
        let mut tok = 1u64;
        for i in 0..4000u64 {
            let core = CoreId((i % 4) as u16);
            let line = (i * 7 + i / 13) % 97;
            if i % 3 == 0 {
                h.access(core, MemOp::Load, addr(line), 0);
            } else {
                h.access(core, MemOp::Store, addr(line), tok);
                model.insert(line, tok);
                tok += 1;
            }
            if i % 500 == 499 {
                let vd = VdId(((i / 500) % 2) as u16);
                h.advance_epoch_explicit(vd, AdvanceCause::ExplicitMark);
                h.tag_walk(vd);
            }
        }
        for (line, expect) in model {
            assert_eq!(h.newest_token(LineAddr::new(line)), expect, "line {line}");
        }
    }

    #[test]
    fn version_stream_has_no_duplicate_line_epoch_after_walk() {
        // Once a (line, epoch) version is persisted by the walker, later
        // evictions must not re-emit it.
        let mut h = hier();
        h.access(CoreId(0), MemOp::Store, addr(4), 44);
        h.advance_epoch_explicit(VdId(0), AdvanceCause::ExplicitMark);
        h.take_events();
        let (w, _) = h.tag_walk(VdId(0));
        assert_eq!(w.len(), 1);
        // Remote load later: the version is persisted; only a clean copy
        // transfer happens.
        h.access(CoreId(2), MemOp::Load, addr(4), 0);
        let v = versions(&mut h);
        assert!(
            v.iter()
                .all(|x| !(x.line == LineAddr::new(4) && x.abs_epoch == 1)),
            "persisted version re-emitted: {v:?}"
        );
    }
}
