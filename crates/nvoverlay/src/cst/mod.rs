//! Coherent Snapshot Tracking (CST) — the NVOverlay frontend (paper §IV).
//!
//! CST tracks, *coherently across Versioned Domains*, every change to
//! memory since the last snapshot:
//!
//! * every cache line carries a 16-bit OID tag — the epoch of its last
//!   store ([`hierarchy`]);
//! * each VD runs its own epoch; epochs form a Lamport clock, synchronized
//!   when coherence responses carry data "from the future" (§III-C);
//! * dirty versions of past epochs are immutable: a store to one first
//!   *store-evicts* it into the L2 (§IV-A1);
//! * versions leave a VD through capacity evictions, coherence downgrades
//!   and invalidations, and the opportunistic tag walker (§IV-C), and are
//!   handed to the MNM backend;
//! * 16-bit epoch wrap-around is handled with the two-group epoch-sense
//!   scheme (§IV-D).

pub mod hierarchy;
pub mod invariants;

pub use hierarchy::{AdvanceCause, CstConfig, CstEvent, VersionOut, VersionedHierarchy};
pub use invariants::InvariantViolation;
