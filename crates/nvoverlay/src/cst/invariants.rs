//! Executable invariants of the versioned hierarchy.
//!
//! DESIGN.md §6 lists the invariants CST maintains; this module makes
//! them checkable at any quiescent point (between accesses). The checker
//! is exhaustive and O(cache contents) — meant for tests and debugging,
//! not the simulation fast path.
//!
//! Checked here:
//!
//! 1. **Inclusion** — every L1-resident line is resident in its VD's L2.
//! 2. **Version ordering (§IV-A2)** — an L1 copy's OID is never older
//!    than the L2 copy's OID for the same line.
//! 3. **Single writer** — at most one L1 within a VD holds a line in M;
//!    writable (M/E) copies never coexist with copies in other VDs.
//! 4. **Tag-window discipline** — every cached OID reconstructs within
//!    half the epoch space of its VD's current epoch (the wrap-around
//!    flush guarantee, §IV-D).
//! 5. **Version causality** — no cached version is tagged newer than its
//!    VD's current epoch.

use super::hierarchy::VersionedHierarchy;
use nvsim::addr::LineAddr;
use std::fmt;

/// A violated invariant, with enough context to debug it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvariantViolation {
    /// An L1 line has no backing L2 line.
    InclusionBroken {
        /// Core whose L1 holds the orphan.
        core: u16,
        /// The orphaned line.
        line: LineAddr,
    },
    /// An L1 version is older than the L2 version of the same line.
    VersionOrderBroken {
        /// Core whose L1 violates the order.
        core: u16,
        /// The line.
        line: LineAddr,
        /// L1 OID tag.
        l1_oid: u16,
        /// L2 OID tag.
        l2_oid: u16,
    },
    /// Two L1s of one VD hold the same line with at least one M copy.
    MultipleWriters {
        /// The VD.
        vd: u16,
        /// The line.
        line: LineAddr,
    },
    /// A writable (M/E) copy coexists with a copy in another VD.
    WritableShared {
        /// The line.
        line: LineAddr,
        /// VD holding it writable.
        writer_vd: u16,
        /// Another VD holding a copy.
        other_vd: u16,
    },
    /// A cached version is tagged in the future of its VD's epoch.
    FutureVersion {
        /// The VD.
        vd: u16,
        /// The line.
        line: LineAddr,
        /// The offending tag.
        oid: u16,
        /// The VD's current tag.
        cur: u16,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::InclusionBroken { core, line } => {
                write!(
                    f,
                    "inclusion broken: core{core} L1 holds {line} without an L2 copy"
                )
            }
            InvariantViolation::VersionOrderBroken {
                core,
                line,
                l1_oid,
                l2_oid,
            } => write!(
                f,
                "version order broken on {line}: core{core} L1 @{l1_oid} older than L2 @{l2_oid}"
            ),
            InvariantViolation::MultipleWriters { vd, line } => {
                write!(f, "multiple writers in vd{vd} for {line}")
            }
            InvariantViolation::WritableShared {
                line,
                writer_vd,
                other_vd,
            } => write!(
                f,
                "{line} writable in vd{writer_vd} while vd{other_vd} holds a copy"
            ),
            InvariantViolation::FutureVersion { vd, line, oid, cur } => {
                write!(f, "vd{vd} caches {line} @{oid}, newer than its epoch {cur}")
            }
        }
    }
}

impl VersionedHierarchy {
    /// Checks every invariant; returns all violations found (empty =
    /// healthy). Quiescent-point use only.
    pub fn check_invariants(&self) -> Vec<InvariantViolation> {
        let mut v = Vec::new();
        self.check_inclusion_and_order(&mut v);
        self.check_writers(&mut v);
        self.check_tag_windows(&mut v);
        v
    }

    /// Panics with a readable report if any invariant is violated
    /// (test helper).
    ///
    /// # Panics
    /// Panics when [`VersionedHierarchy::check_invariants`] is non-empty.
    pub fn assert_invariants(&self) {
        let v = self.check_invariants();
        assert!(
            v.is_empty(),
            "versioned hierarchy invariants violated:\n{}",
            v.iter()
                .map(|x| format!("  - {x}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Hot-path validation hook, called by `NvOverlaySystem` at quiescent
    /// points (epoch advances and the final drain).
    ///
    /// The checks are O(cache contents) — far too expensive for release
    /// sweeps, which replay millions of accesses. This compiles to
    /// nothing unless the build carries `debug_assertions` (every `cargo
    /// test`) or the `strict-invariants` cargo feature (opt-in release
    /// validation, forwarded from the workspace root as
    /// `nvoverlay-suite/strict-invariants`).
    ///
    /// # Panics
    /// As [`VersionedHierarchy::assert_invariants`], when enabled.
    #[inline]
    pub fn debug_validate(&self) {
        #[cfg(any(debug_assertions, feature = "strict-invariants"))]
        self.assert_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{AdvanceCause, CstConfig};
    use nvsim::addr::{Addr, CoreId, VdId};
    use nvsim::config::SimConfig;
    use nvsim::memsys::MemOp;

    fn hier() -> VersionedHierarchy {
        let cfg = SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(100)
            .build()
            .unwrap();
        VersionedHierarchy::new(&cfg, CstConfig::default())
    }

    #[test]
    fn fresh_hierarchy_is_healthy() {
        hier().assert_invariants();
    }

    #[test]
    fn invariants_hold_through_mixed_traffic() {
        let mut h = hier();
        for i in 0..3000u64 {
            let core = CoreId((i % 4) as u16);
            let line = (i * 13 + i / 17) % 150;
            if i % 3 == 0 {
                h.access(core, MemOp::Load, Addr::new(line * 64), 0);
            } else {
                h.access(core, MemOp::Store, Addr::new(line * 64), i);
            }
            if i % 257 == 0 {
                h.assert_invariants();
            }
            if i % 500 == 499 {
                let vd = VdId(((i / 500) % 2) as u16);
                h.advance_epoch_explicit(vd, AdvanceCause::ExplicitMark);
                h.tag_walk(vd);
                h.assert_invariants();
            }
        }
        h.drain();
        h.assert_invariants();
    }

    #[test]
    fn invariants_hold_across_wrap() {
        let cfg = SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(10)
            .build()
            .unwrap();
        let cst = CstConfig {
            initial_epoch: crate::epoch::HALF_SPACE - 30,
            ..CstConfig::default()
        };
        let mut h = VersionedHierarchy::new(&cfg, cst);
        for i in 0..800u64 {
            h.access(
                CoreId((i % 4) as u16),
                MemOp::Store,
                Addr::new((i % 40) * 64),
                i + 1,
            );
            if i % 100 == 99 {
                h.assert_invariants();
            }
        }
        assert!(h.wrap_flushes() >= 1, "the run crossed a group boundary");
        h.assert_invariants();
    }
}
