//! The battery-backed OMC write-back buffer (paper §IV-E, evaluated in
//! Fig 16).
//!
//! A set-associative cache in front of the NVM that absorbs *redundant*
//! version write-backs — versions of the same address generated in the
//! same epoch. Being battery-backed it counts as part of the persistence
//! domain: buffered versions are durable, and the buffer is flushed on
//! power failure (or, here, on [`OmcBuffer::drain`]).

use nvsim::addr::{LineAddr, Token};
use nvsim::cache::CacheArray;

/// A version held in the buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufferedVersion {
    /// The line.
    pub line: LineAddr,
    /// Version content.
    pub token: Token,
    /// Absolute epoch of the version.
    pub abs_epoch: u64,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    token: Token,
    abs_epoch: u64,
}

/// Outcome of offering a version to the buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BufferOutcome {
    /// The write was absorbed (same line, same epoch already buffered).
    pub hit: bool,
    /// Versions pushed out of the buffer that must now be written to NVM
    /// (an older-epoch version of the same line, or a capacity victim).
    pub spilled: Vec<BufferedVersion>,
}

/// The OMC's persistent write-back buffer.
#[derive(Debug)]
pub struct OmcBuffer {
    cache: CacheArray<Slot>,
    hits: u64,
    misses: u64,
}

impl OmcBuffer {
    /// Creates a buffer with `sets` × `ways` line slots.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: u64, ways: u32) -> Self {
        Self {
            cache: CacheArray::new(sets, ways),
            hits: 0,
            misses: 0,
        }
    }

    /// Offers a version to the buffer.
    ///
    /// * same line, same epoch → absorbed (hit; no NVM write);
    /// * same line, older epoch buffered → the old version spills to NVM
    ///   (it belongs to an earlier snapshot and must be kept), the new one
    ///   takes the slot;
    /// * miss → inserted; a capacity victim spills.
    pub fn offer(&mut self, line: LineAddr, token: Token, abs_epoch: u64) -> BufferOutcome {
        let mut out = BufferOutcome::default();
        if let Some(slot) = self.cache.get_mut(line) {
            if slot.abs_epoch == abs_epoch {
                slot.token = token;
                self.hits += 1;
                out.hit = true;
                return out;
            }
            debug_assert!(
                slot.abs_epoch < abs_epoch,
                "versions of one line arrive in epoch order"
            );
            out.spilled.push(BufferedVersion {
                line,
                token: slot.token,
                abs_epoch: slot.abs_epoch,
            });
            slot.token = token;
            slot.abs_epoch = abs_epoch;
            self.misses += 1;
            return out;
        }
        self.misses += 1;
        if let Some((vline, vslot)) = self.cache.insert(line, Slot { token, abs_epoch }) {
            out.spilled.push(BufferedVersion {
                line: vline,
                token: vslot.token,
                abs_epoch: vslot.abs_epoch,
            });
        }
        out
    }

    /// Drains every buffered version with epoch < `below_epoch` (epoch
    /// commit) — they must reach their final NVM home so the mapping
    /// tables can be merged.
    pub fn drain_below(&mut self, below_epoch: u64) -> Vec<BufferedVersion> {
        let lines: Vec<LineAddr> = self.cache.lines_where(|_, s| s.abs_epoch < below_epoch);
        lines
            .into_iter()
            .map(|l| {
                let s = self.cache.remove(l).expect("listed");
                BufferedVersion {
                    line: l,
                    token: s.token,
                    abs_epoch: s.abs_epoch,
                }
            })
            .collect()
    }

    /// Drains everything (shutdown / power failure flush).
    pub fn drain(&mut self) -> Vec<BufferedVersion> {
        self.drain_below(u64::MAX)
    }

    /// Reads a buffered version (battery-backed = part of the persistence
    /// domain, so recovery may consult it).
    pub fn get(&self, line: LineAddr) -> Option<BufferedVersion> {
        self.cache.peek(line).map(|s| BufferedVersion {
            line,
            token: s.token,
            abs_epoch: s.abs_epoch,
        })
    }

    /// Absorbed writes.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Writes that were not absorbed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Buffered version count.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn same_epoch_rewrites_are_absorbed() {
        let mut b = OmcBuffer::new(4, 2);
        let o1 = b.offer(line(1), 10, 1);
        assert!(!o1.hit);
        let o2 = b.offer(line(1), 11, 1);
        assert!(o2.hit);
        assert!(o2.spilled.is_empty());
        assert_eq!(b.hits(), 1);
        assert_eq!(b.get(line(1)).unwrap().token, 11);
    }

    #[test]
    fn newer_epoch_spills_the_old_version() {
        let mut b = OmcBuffer::new(4, 2);
        b.offer(line(1), 10, 1);
        let o = b.offer(line(1), 20, 2);
        assert!(!o.hit);
        assert_eq!(
            o.spilled,
            vec![BufferedVersion {
                line: line(1),
                token: 10,
                abs_epoch: 1
            }]
        );
        assert_eq!(b.get(line(1)).unwrap().abs_epoch, 2);
    }

    #[test]
    fn capacity_victims_spill() {
        let mut b = OmcBuffer::new(1, 1);
        b.offer(line(1), 10, 1);
        let o = b.offer(line(2), 20, 1);
        assert_eq!(o.spilled.len(), 1);
        assert_eq!(o.spilled[0].line, line(1));
    }

    #[test]
    fn drain_below_partitions_by_epoch() {
        let mut b = OmcBuffer::new(8, 2);
        b.offer(line(1), 10, 1);
        b.offer(line(2), 20, 2);
        b.offer(line(3), 30, 3);
        let old = b.drain_below(3);
        assert_eq!(old.len(), 2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.get(line(3)).unwrap().token, 30);
        let rest = b.drain();
        assert_eq!(rest.len(), 1);
        assert!(b.is_empty());
    }
}
