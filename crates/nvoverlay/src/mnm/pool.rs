//! The NVM overlay page buffer pool (paper §V-C, Fig 9).
//!
//! NVM storage for snapshot versions is a pool of 4-KiB pages managed by
//! the OMC. Allocation status is a bitmap ("with negligible storage
//! overhead"); each page holds up to 64 line-sized version slots. Versions
//! of one epoch are packed into that epoch's open page, which is the
//! compact sub-page packing of the original Page Overlays design taken to
//! line granularity (DESIGN.md §2 documents the equivalence).

use nvsim::addr::Token;
use std::fmt;

/// Line slots per 4-KiB overlay page.
pub const SLOTS_PER_PAGE: usize = 64;

/// The NVM location of one stored version: an overlay page and a 64-byte
/// slot within it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NvmLoc {
    /// Overlay page index within the pool.
    pub page: u32,
    /// Slot index within the page (0..64).
    pub slot: u8,
}

/// Error returned when the pool cannot allocate a page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolExhausted;

impl fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("overlay page pool exhausted")
    }
}

impl std::error::Error for PoolExhausted {}

#[derive(Clone, Debug)]
struct DataPage {
    slots: Vec<Option<Token>>,
}

impl DataPage {
    fn new() -> Self {
        Self {
            slots: vec![None; SLOTS_PER_PAGE],
        }
    }
}

/// A bitmap-managed pool of overlay data pages.
pub struct PagePool {
    bitmap: Vec<u64>,
    pages: Vec<Option<DataPage>>,
    total: usize,
    allocated: usize,
    high_water: usize,
    total_allocations: u64,
}

impl PagePool {
    /// Creates a pool of `total_pages` 4-KiB pages.
    ///
    /// # Panics
    /// Panics if `total_pages` is zero.
    pub fn new(total_pages: usize) -> Self {
        assert!(total_pages > 0, "pool needs at least one page");
        Self {
            bitmap: vec![0; total_pages.div_ceil(64)],
            pages: (0..total_pages).map(|_| None).collect(),
            total: total_pages,
            allocated: 0,
            high_water: 0,
            total_allocations: 0,
        }
    }

    /// Allocates a page, returning its index.
    ///
    /// # Errors
    /// Returns [`PoolExhausted`] when every page is in use (the OS would
    /// then either grow the pool — [`PagePool::grow`] — or the OMC starts
    /// version compaction, §V-D).
    pub fn allocate(&mut self) -> Result<u32, PoolExhausted> {
        for (w, word) in self.bitmap.iter_mut().enumerate() {
            if *word != u64::MAX {
                let b = word.trailing_ones() as usize;
                let idx = w * 64 + b;
                if idx >= self.total {
                    break;
                }
                *word |= 1u64 << b;
                self.pages[idx] = Some(DataPage::new());
                self.allocated += 1;
                self.total_allocations += 1;
                self.high_water = self.high_water.max(self.allocated);
                return Ok(idx as u32);
            }
        }
        Err(PoolExhausted)
    }

    /// Frees a page.
    ///
    /// # Panics
    /// Panics if the page is not currently allocated.
    pub fn free(&mut self, page: u32) {
        let idx = page as usize;
        assert!(idx < self.total, "page index out of range");
        let (w, b) = (idx / 64, idx % 64);
        assert!(
            self.bitmap[w] & (1u64 << b) != 0,
            "double free of page {page}"
        );
        self.bitmap[w] &= !(1u64 << b);
        self.pages[idx] = None;
        self.allocated -= 1;
    }

    /// Whether a page is allocated.
    pub fn is_allocated(&self, page: u32) -> bool {
        let idx = page as usize;
        idx < self.total && self.bitmap[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Writes a version token into a slot.
    ///
    /// # Panics
    /// Panics if the page is not allocated or the slot index is out of
    /// range.
    pub fn write(&mut self, loc: NvmLoc, token: Token) {
        let page = self.pages[loc.page as usize]
            .as_mut()
            .expect("write to unallocated page");
        page.slots[loc.slot as usize] = Some(token);
    }

    /// Reads a version token from a slot.
    pub fn read(&self, loc: NvmLoc) -> Option<Token> {
        self.pages
            .get(loc.page as usize)?
            .as_ref()?
            .slots
            .get(loc.slot as usize)
            .copied()
            .flatten()
    }

    /// Grows the pool by `extra_pages` (the OS granting more NVM, §V-D).
    pub fn grow(&mut self, extra_pages: usize) {
        self.total += extra_pages;
        self.pages.extend((0..extra_pages).map(|_| None));
        self.bitmap.resize(self.total.div_ceil(64), 0);
    }

    /// Pages currently allocated.
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// Total pool capacity in pages.
    pub fn total_pages(&self) -> usize {
        self.total
    }

    /// Peak simultaneous allocation.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Cumulative allocations over the pool's lifetime.
    pub fn total_allocations(&self) -> u64 {
        self.total_allocations
    }

    /// Fraction of the pool in use (0.0–1.0).
    pub fn utilization(&self) -> f64 {
        self.allocated as f64 / self.total as f64
    }
}

impl fmt::Debug for PagePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagePool")
            .field("total", &self.total)
            .field("allocated", &self.allocated)
            .field("high_water", &self.high_water)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_roundtrip() {
        let mut p = PagePool::new(4);
        let pg = p.allocate().unwrap();
        let loc = NvmLoc { page: pg, slot: 7 };
        p.write(loc, 1234);
        assert_eq!(p.read(loc), Some(1234));
        assert_eq!(p.read(NvmLoc { page: pg, slot: 8 }), None);
        assert_eq!(p.allocated(), 1);
    }

    #[test]
    fn exhaustion_and_grow() {
        let mut p = PagePool::new(2);
        p.allocate().unwrap();
        p.allocate().unwrap();
        assert_eq!(p.allocate(), Err(PoolExhausted));
        p.grow(1);
        assert!(p.allocate().is_ok());
        assert_eq!(p.total_pages(), 3);
    }

    #[test]
    fn free_makes_page_reusable_and_clears_data() {
        let mut p = PagePool::new(1);
        let pg = p.allocate().unwrap();
        p.write(NvmLoc { page: pg, slot: 0 }, 9);
        p.free(pg);
        assert!(!p.is_allocated(pg));
        assert_eq!(p.read(NvmLoc { page: pg, slot: 0 }), None);
        let pg2 = p.allocate().unwrap();
        assert_eq!(pg, pg2, "freed page is reused");
        assert_eq!(p.read(NvmLoc { page: pg2, slot: 0 }), None);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut p = PagePool::new(1);
        let pg = p.allocate().unwrap();
        p.free(pg);
        p.free(pg);
    }

    #[test]
    fn high_water_and_utilization_track_peaks() {
        let mut p = PagePool::new(4);
        let a = p.allocate().unwrap();
        let _b = p.allocate().unwrap();
        assert_eq!(p.high_water(), 2);
        p.free(a);
        assert_eq!(p.high_water(), 2);
        assert!((p.utilization() - 0.25).abs() < 1e-9);
        assert_eq!(p.total_allocations(), 2);
    }

    #[test]
    fn bitmap_allocates_past_64_pages() {
        let mut p = PagePool::new(130);
        let mut got = std::collections::HashSet::new();
        for _ in 0..130 {
            assert!(got.insert(p.allocate().unwrap()), "no duplicate pages");
        }
        assert_eq!(p.allocate(), Err(PoolExhausted));
    }
}
