//! Multi-snapshot NVM Mapping (MNM) — the NVOverlay backend (paper §V).
//!
//! The backend is a set of [`omc::Omc`]s, each owning an address
//! partition (§V-F "Scaling to Large NVM Arrays"). One OMC is the
//! *master*: it maintains the per-VD `min-ver` array, computes the
//! recoverable epoch, orders the merge on every OMC, and atomically
//! persists `rec-epoch` (§V-B).
//!
//! ## Recoverable-epoch pipeline
//!
//! Each VD's tag walker reports `min-ver` — the smallest epoch still
//! holding unpersisted versions in that VD. Epoch *E* is fully persistent
//! once every VD's `min-ver` exceeds *E*, so the recoverable epoch is
//! `min(min-vers) − 1`. Before the master OMC persists the new
//! `rec-epoch`, every OMC merges the per-epoch tables up to it into its
//! Master Mapping Table; recovery therefore only ever scans master tables
//! (see DESIGN.md for the ordering argument).

pub mod buffer;
pub mod omc;
pub mod pool;
pub mod table;

pub use buffer::{BufferOutcome, BufferedVersion, OmcBuffer};
pub use omc::{Omc, OmcConfig, OmcStats, SnapshotRetention};
pub use pool::{NvmLoc, PagePool, PoolExhausted};
pub use table::{InsertEffect, MasterTable, RadixTable};

use nvsim::addr::{LineAddr, Token, VdId};
use nvsim::clock::Cycle;
use nvsim::fault::PersistPayload;
use nvsim::nvm::Nvm;
use nvsim::nvtrace::{EventKind, TraceScope, Track};
use nvsim::stats::NvmWriteKind;

/// The full MNM backend: one or more OMCs plus the distributed
/// recoverable-epoch machinery.
pub struct Mnm {
    omcs: Vec<Omc>,
    /// Latest reported `min-ver` per VD (master OMC state).
    min_vers: Vec<u64>,
    /// The persisted recoverable epoch.
    rec_epoch: u64,
    /// Highest epoch ever observed (for compaction targets).
    max_epoch_seen: u64,
    /// Processor context dumps: (vd, epoch) → context blob token.
    contexts: nvsim::fastmap::FastHashMap<(u16, u64), Token>,
}

impl Mnm {
    /// Creates a backend with `omc_count` OMCs for `vd_count` VDs.
    ///
    /// # Panics
    /// Panics if `omc_count` or `vd_count` is zero.
    pub fn new(omc_count: usize, vd_count: usize, cfg: OmcConfig) -> Self {
        assert!(omc_count > 0, "at least one OMC required");
        assert!(vd_count > 0, "at least one VD required");
        Self {
            omcs: (0..omc_count).map(|_| Omc::new(cfg.clone())).collect(),
            min_vers: vec![0; vd_count],
            rec_epoch: 0,
            max_epoch_seen: 0,
            contexts: nvsim::fastmap::FastHashMap::default(),
        }
    }

    /// The OMC index owning `line`'s address partition.
    ///
    /// Address-interleave at *page* granularity: every line of a page
    /// maps to the same OMC, so leaf mapping nodes stay dense (finer
    /// interleaving would halve Fig 13's leaf occupancy per OMC). This is
    /// the single routing function — every read and write path, and the
    /// `nvserve` shard planner, must agree on it.
    pub fn route(&self, line: LineAddr) -> usize {
        (line.page().raw() % self.omcs.len() as u64) as usize
    }

    /// The OMC owning `line` (the shared routing helper behind every
    /// line-addressed read path).
    fn omc_for(&self, line: LineAddr) -> &Omc {
        &self.omcs[self.route(line)]
    }

    /// The persisted recoverable epoch (0 = nothing recoverable yet).
    pub fn rec_epoch(&self) -> u64 {
        self.rec_epoch
    }

    /// The highest epoch any version was ever received for. The gap to
    /// [`Mnm::rec_epoch`] is the recoverable-epoch lag a serving layer
    /// reports: captured-but-not-yet-durable history.
    pub fn max_epoch_seen(&self) -> u64 {
        self.max_epoch_seen
    }

    /// The OMCs (stats, inspection).
    pub fn omcs(&self) -> &[Omc] {
        &self.omcs
    }

    /// Publishes MNM-wide and per-OMC metrics under `prefix`.
    pub fn metrics_into(&self, reg: &mut nvsim::metrics::Registry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.rec_epoch"), self.rec_epoch);
        for (i, mv) in self.min_vers.iter().enumerate() {
            reg.set_counter(&format!("{prefix}.min_ver.vd{i}"), *mv);
        }
        for (i, o) in self.omcs.iter().enumerate() {
            o.metrics_into(reg, &format!("{prefix}.omc.{i}"));
        }
    }

    /// Receives a version from the frontend. Returns the backpressure
    /// stall for an access-path enqueuer.
    pub fn receive_version(
        &mut self,
        nvm: &mut Nvm,
        now: Cycle,
        line: LineAddr,
        token: Token,
        abs_epoch: u64,
    ) -> Cycle {
        self.max_epoch_seen = self.max_epoch_seen.max(abs_epoch);
        let o = self.route(line);
        self.omcs[o].receive_version(nvm, now, line, token, abs_epoch)
    }

    /// A VD's tag walker reports its `min-ver` to the master OMC. If the
    /// recoverable epoch advances, every OMC merges through it and the
    /// master OMC atomically persists the new `rec-epoch` (one 8-byte
    /// write). Returns the new recoverable epoch if it advanced.
    pub fn report_min_ver(
        &mut self,
        nvm: &mut Nvm,
        now: Cycle,
        vd: VdId,
        min_ver: u64,
    ) -> Option<u64> {
        let slot = &mut self.min_vers[vd.index()];
        debug_assert!(*slot <= min_ver, "min-ver reports are monotonic");
        *slot = min_ver;
        let min = self.min_vers.iter().copied().min().expect("non-empty");
        if min == 0 {
            return None; // some VD has not reported yet
        }
        let candidate = min - 1;
        if candidate > self.rec_epoch {
            for (i, o) in self.omcs.iter_mut().enumerate() {
                let merged_entries = o.merge_through(nvm, now, candidate);
                TraceScope::new(Track::Omc(i as u16)).emit(
                    EventKind::OmcFlush,
                    now,
                    candidate,
                    merged_entries,
                );
            }
            self.rec_epoch = candidate;
            // Atomic 8-byte rec-epoch pointer write by the master OMC,
            // behind a persistence fence: the root must not become durable
            // before any version or mapping write it covers, or a crash
            // could retain the root while losing committed state.
            nvm.write_fenced(now, candidate, NvmWriteKind::MapMetadata, 8);
            nvm.annotate_last(PersistPayload::RecEpochRoot { epoch: candidate });
            Some(candidate)
        } else {
            None
        }
    }

    /// Lowers a VD's cached `min-ver` when an unpersisted version of
    /// `abs_epoch` migrated into it (C2C transfer): the recoverable epoch
    /// must not advance past an obligation that changed hands between two
    /// tag walks.
    pub fn clamp_min_ver(&mut self, vd: VdId, abs_epoch: u64) {
        let slot = &mut self.min_vers[vd.index()];
        if *slot > abs_epoch {
            *slot = abs_epoch;
        }
    }

    /// Final shutdown flush: every buffer drains, everything merges, and
    /// `rec-epoch` moves to `final_epoch`.
    pub fn finish(&mut self, nvm: &mut Nvm, now: Cycle, final_epoch: u64) {
        for (i, o) in self.omcs.iter_mut().enumerate() {
            o.drain_buffer(nvm, now);
            let merged_entries = o.merge_through(nvm, now, final_epoch);
            TraceScope::new(Track::Omc(i as u16)).emit(
                EventKind::OmcFlush,
                now,
                final_epoch,
                merged_entries,
            );
        }
        if final_epoch > self.rec_epoch {
            self.rec_epoch = final_epoch;
            nvm.write_fenced(now, final_epoch, NvmWriteKind::MapMetadata, 8);
            nvm.annotate_last(PersistPayload::RecEpochRoot { epoch: final_epoch });
        }
    }

    /// Simulates a power loss + restart: every OMC drops its volatile
    /// state and rebuilds from persistent structures. Per-epoch
    /// (time-travel) reads become unavailable; master reads, GC and
    /// compaction keep working.
    pub fn simulate_reboot(&mut self) {
        for o in &mut self.omcs {
            o.simulate_reboot();
        }
        self.contexts.retain(|(_, e), _| *e <= self.rec_epoch);
    }

    /// Reads the recoverable image's version of a line.
    pub fn read_master(&self, line: LineAddr) -> Option<Token> {
        self.omc_for(line).read_master(line)
    }

    /// Time-travel read at `epoch` (§V-E).
    pub fn time_travel(&self, line: LineAddr, epoch: u64) -> Option<Token> {
        self.omc_for(line).time_travel(line, epoch)
    }

    /// Iterates the full recoverable image across all OMCs.
    pub fn master_image(&self) -> impl Iterator<Item = (LineAddr, Token)> + '_ {
        self.omcs.iter().flat_map(|o| o.master_image())
    }

    /// All epochs with captured versions (ascending, deduplicated across
    /// OMCs), with whether each is individually readable everywhere.
    pub fn epochs(&self) -> Vec<(u64, bool)> {
        let mut map: std::collections::BTreeMap<u64, bool> = std::collections::BTreeMap::new();
        for o in &self.omcs {
            for (e, readable) in o.epochs() {
                map.entry(e)
                    .and_modify(|r| *r = *r && readable)
                    .or_insert(readable);
            }
        }
        map.into_iter().collect()
    }

    /// The incremental delta captured in exactly `epoch`, across all OMCs
    /// (None if any OMC has reclaimed or compacted that epoch's table).
    pub fn epoch_delta(&self, epoch: u64) -> Option<Vec<(LineAddr, Token)>> {
        let mut out = Vec::new();
        for o in &self.omcs {
            match o.epoch_delta(epoch) {
                Some(it) => out.extend(it),
                None => {
                    // The OMC may simply have no versions for this epoch.
                    if o.epochs().any(|(e, _)| e == epoch) {
                        return None;
                    }
                }
            }
        }
        out.sort_by_key(|(l, _)| l.raw());
        Some(out)
    }

    /// Records a processor context dump for `(vd, epoch)` (§III-C: cores
    /// "dump their internal context to the NVM at the end of every
    /// epoch"). The blob is modeled as a token.
    pub fn record_context(&mut self, vd: VdId, epoch: u64, blob: Token) {
        self.contexts.insert((vd.0, epoch), blob);
    }

    /// The context dumped by `vd` at the end of `epoch`, if recorded.
    pub fn context(&self, vd: VdId, epoch: u64) -> Option<Token> {
        self.contexts.get(&(vd.0, epoch)).copied()
    }

    /// Every recorded context dump as `(vd, epoch, blob)`, sorted by
    /// `(vd, epoch)`. Export hook for the persistent snapshot store: the
    /// contexts map is otherwise private, and the store needs a
    /// deterministic ordering to produce content-addressed layers.
    pub fn contexts_sorted(&self) -> Vec<(u16, u64, Token)> {
        let mut out: Vec<(u16, u64, Token)> = self
            .contexts
            .iter()
            .map(|((vd, epoch), blob)| (*vd, *epoch, *blob))
            .collect();
        out.sort_unstable_by_key(|&(vd, epoch, _)| (vd, epoch));
        out
    }

    /// Number of versioned domains this backend was built for.
    pub fn vd_count(&self) -> usize {
        self.min_vers.len()
    }

    /// Records that `abs_epoch` was observed without receiving a
    /// version. Restore hook: a rebuilt backend replays only captured
    /// deltas, so this preserves `max_epoch_seen` across backup/restore
    /// even when the newest observed epochs carried no versions.
    pub fn note_epoch_seen(&mut self, abs_epoch: u64) {
        self.max_epoch_seen = self.max_epoch_seen.max(abs_epoch);
    }

    /// Aggregate size of all master tables in bytes (Fig 13 numerator).
    pub fn master_size_bytes(&self) -> u64 {
        self.omcs
            .iter()
            .map(|o| o.master().tree().size_bytes())
            .sum()
    }

    /// Aggregate number of lines mapped by the master tables.
    pub fn master_entries(&self) -> u64 {
        self.omcs.iter().map(|o| o.master().tree().len()).sum()
    }

    /// Aggregate DRAM held by volatile per-epoch tables.
    pub fn epoch_table_dram_bytes(&self) -> u64 {
        self.omcs.iter().map(|o| o.epoch_table_dram_bytes()).sum()
    }

    /// Aggregate buffer hit count (Fig 16).
    pub fn buffer_hits(&self) -> u64 {
        self.omcs.iter().map(|o| o.stats().buffer_hits).sum()
    }

    /// Aggregate buffer miss count.
    pub fn buffer_misses(&self) -> u64 {
        self.omcs.iter().map(|o| o.stats().buffer_misses).sum()
    }

    /// Aggregate versions received.
    pub fn versions_received(&self) -> u64 {
        self.omcs.iter().map(|o| o.stats().versions_received).sum()
    }
}

impl std::fmt::Debug for Mnm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mnm")
            .field("omcs", &self.omcs.len())
            .field("rec_epoch", &self.rec_epoch)
            .field("min_vers", &self.min_vers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nvm() -> Nvm {
        Nvm::new(4, 400, 200, 8, 100_000)
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    fn mnm(omcs: usize) -> Mnm {
        Mnm::new(
            omcs,
            2,
            OmcConfig {
                pool_pages: 64,
                ..OmcConfig::default()
            },
        )
    }

    #[test]
    fn rec_epoch_is_min_of_min_vers_minus_one() {
        let mut m = mnm(2);
        let mut n = nvm();
        for i in 0..10 {
            m.receive_version(&mut n, 0, line(i), i, 1);
        }
        assert_eq!(m.rec_epoch(), 0);
        // VD0 walked and is at epoch 3; VD1 still at 1.
        assert_eq!(m.report_min_ver(&mut n, 0, VdId(0), 3), None);
        assert_eq!(m.rec_epoch(), 0, "VD1 has not reported past epoch 1");
        // VD1 reports min-ver 2: every VD is past epoch 1 → rec = 1.
        assert_eq!(m.report_min_ver(&mut n, 0, VdId(1), 2), Some(1));
        assert_eq!(m.rec_epoch(), 1);
        // The merged image is readable.
        for i in 0..10 {
            assert_eq!(m.read_master(line(i)), Some(i));
        }
    }

    #[test]
    fn versions_route_across_omcs_and_image_unions() {
        let mut m = mnm(3);
        let mut n = nvm();
        // One line in each of 30 distinct pages: page-granular routing
        // spreads them 10/10/10 across the three OMCs.
        for i in 0..30 {
            m.receive_version(&mut n, 0, line(i * 64), 100 + i, 1);
        }
        m.finish(&mut n, 0, 1);
        let mut img: Vec<_> = m.master_image().collect();
        img.sort_by_key(|(l, _)| l.raw());
        assert_eq!(img.len(), 30);
        for (i, (l, t)) in img.iter().enumerate() {
            assert_eq!(l.raw(), i as u64 * 64);
            assert_eq!(*t, 100 + i as u64);
        }
        assert!(m.omcs().iter().all(|o| o.stats().versions_received == 10));
    }

    #[test]
    fn finish_drains_and_advances_rec() {
        let mut m = Mnm::new(
            1,
            1,
            OmcConfig {
                pool_pages: 16,
                buffer: Some((8, 2)),
                ..OmcConfig::default()
            },
        );
        let mut n = nvm();
        m.receive_version(&mut n, 0, line(1), 7, 5);
        assert_eq!(m.read_master(line(1)), None);
        m.finish(&mut n, 0, 5);
        assert_eq!(m.rec_epoch(), 5);
        assert_eq!(m.read_master(line(1)), Some(7));
    }

    #[test]
    fn time_travel_routes_to_the_right_omc() {
        let mut m = mnm(2);
        let mut n = nvm();
        // Lines in different pages → different OMCs.
        m.receive_version(&mut n, 0, line(4), 40, 1);
        m.receive_version(&mut n, 0, line(64 + 5), 50, 2);
        m.finish(&mut n, 0, 2);
        assert_eq!(m.time_travel(line(4), 1), Some(40));
        assert_eq!(m.time_travel(line(64 + 5), 1), None);
        assert_eq!(m.time_travel(line(64 + 5), 2), Some(50));
    }
}
