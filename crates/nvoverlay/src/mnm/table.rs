//! Overlay mapping tables (paper §V-C, Fig 9/10).
//!
//! Both table kinds share one radix-tree shape over the 48-bit physical
//! address: four inner levels indexed by 9 bits each (bits 47–12, the page
//! number, exactly like x86-64 page tables) and a 64-entry leaf level
//! indexed by bits 11–6 (the line within the page):
//!
//! * the **per-epoch table** `M_E` is volatile (DRAM) and tracks the
//!   versions produced in epoch E;
//! * the **Master Mapping Table** `M_master` is persisted on NVM and maps
//!   the current consistent memory image; [`MasterTable`] wraps the radix
//!   tree with 8-byte NVM metadata write accounting and displaced-location
//!   tracking for garbage collection.
//!
//! Node sizes match Fig 10: inner nodes are 512×8 B = 4 KiB; leaf nodes
//! are 64×8 B = 512 B, giving the 12.5 % theoretical metadata floor the
//! paper reports against in Fig 13.

use super::pool::NvmLoc;
use nvsim::addr::LineAddr;
use std::fmt;

/// Entries per inner radix node (9 index bits).
pub const INNER_FANOUT: usize = 512;
/// Entries per leaf node (6 index bits — the 64 lines of a page).
pub const LEAF_FANOUT: usize = 64;
/// Bytes per inner node when persisted (512 × 8 B).
pub const INNER_NODE_BYTES: u64 = (INNER_FANOUT * 8) as u64;
/// Bytes per leaf node when persisted (64 × 8 B).
pub const LEAF_NODE_BYTES: u64 = (LEAF_FANOUT * 8) as u64;

/// Encodes a mapping entry as the 8-byte word persisted in `M_master`:
/// bit 0 is the valid bit, bits 1–6 the page slot, bits 7–38 the overlay
/// page number, bits 39–62 are reserved (zero), and bit 63 makes the
/// word's population count odd. The odd-parity bit means any single-bit
/// corruption of a persisted entry is detectable on recovery.
pub fn encode_loc(loc: NvmLoc) -> u64 {
    let mut w = 1u64 | ((u64::from(loc.slot) & 0x3F) << 1) | (u64::from(loc.page) << 7);
    if w.count_ones().is_multiple_of(2) {
        w |= 1 << 63;
    }
    w
}

/// Decodes a persisted mapping word, returning `None` for corrupt words:
/// even parity (any single bit flip), a clear valid bit, or non-zero
/// reserved bits.
pub fn decode_loc(word: u64) -> Option<NvmLoc> {
    if word.count_ones().is_multiple_of(2) || word & 1 == 0 || (word >> 39) & 0xFF_FFFF != 0 {
        return None;
    }
    Some(NvmLoc {
        page: ((word >> 7) & 0xFFFF_FFFF) as u32,
        slot: ((word >> 1) & 0x3F) as u8,
    })
}

struct Inner<T> {
    children: Vec<Option<T>>,
}

impl<T> Inner<T> {
    fn new() -> Self {
        Self {
            children: (0..INNER_FANOUT).map(|_| None).collect(),
        }
    }
}

struct Leaf {
    lines: Vec<Option<NvmLoc>>,
    used: u32,
}

impl Leaf {
    fn new() -> Self {
        Self {
            lines: vec![None; LEAF_FANOUT],
            used: 0,
        }
    }
}

type L4 = Inner<Box<Leaf>>;
type L3 = Inner<Box<L4>>;
type L2 = Inner<Box<L3>>;
type L1 = Inner<Box<L2>>;

/// Index decomposition of a line address into the five radix levels.
fn split(line: LineAddr) -> [usize; 5] {
    let a = line.base().raw();
    [
        ((a >> 39) & 0x1FF) as usize,
        ((a >> 30) & 0x1FF) as usize,
        ((a >> 21) & 0x1FF) as usize,
        ((a >> 12) & 0x1FF) as usize,
        ((a >> 6) & 0x3F) as usize,
    ]
}

/// Counters describing one insert's effect on the persisted tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InsertEffect {
    /// 8-byte pointer/entry writes performed (leaf entry + any new parent
    /// pointers).
    pub entry_writes: u64,
    /// New nodes allocated (inner or leaf).
    pub nodes_created: u64,
    /// The location this insert displaced, if the line was already mapped.
    pub displaced: Option<NvmLoc>,
}

/// The shared five-level radix tree mapping lines to NVM locations.
pub struct RadixTable {
    root: L1,
    entries: u64,
    inner_nodes: u64,
    leaf_nodes: u64,
}

impl Default for RadixTable {
    fn default() -> Self {
        Self::new()
    }
}

impl RadixTable {
    /// An empty table (the root inner node exists from the start).
    pub fn new() -> Self {
        Self {
            root: Inner::new(),
            entries: 0,
            inner_nodes: 1,
            leaf_nodes: 0,
        }
    }

    /// Maps `line` to `loc`, returning what the insert did to the tree.
    pub fn insert(&mut self, line: LineAddr, loc: NvmLoc) -> InsertEffect {
        let [i1, i2, i3, i4, i5] = split(line);
        let mut fx = InsertEffect::default();

        let l2 = self.root.children[i1].get_or_insert_with(|| {
            fx.nodes_created += 1;
            fx.entry_writes += 1;
            Box::new(Inner::new())
        });
        let l3 = l2.children[i2].get_or_insert_with(|| {
            fx.nodes_created += 1;
            fx.entry_writes += 1;
            Box::new(Inner::new())
        });
        let l4 = l3.children[i3].get_or_insert_with(|| {
            fx.nodes_created += 1;
            fx.entry_writes += 1;
            Box::new(Inner::new())
        });
        let leaf = l4.children[i4].get_or_insert_with(|| {
            fx.nodes_created += 1;
            fx.entry_writes += 1;
            Box::new(Leaf::new())
        });
        // Inner node count bookkeeping (nodes_created counts both kinds;
        // the leaf is the last created if any).
        if fx.nodes_created > 0 {
            // Determine how many of the created nodes were inner: all but
            // possibly the leaf.
            let leaf_created = leaf.used == 0 && leaf.lines.iter().all(Option::is_none);
            let inner_created = fx.nodes_created - u64::from(leaf_created);
            self.inner_nodes += inner_created;
            self.leaf_nodes += u64::from(leaf_created);
        }

        fx.displaced = leaf.lines[i5].replace(loc);
        fx.entry_writes += 1; // the leaf entry itself
        if fx.displaced.is_none() {
            leaf.used += 1;
            self.entries += 1;
        }
        fx
    }

    /// Removes the mapping for `line` if it currently points at `loc`
    /// (used when a compacted page's dead versions are reclaimed so no
    /// stale entry can alias into a reused page). Returns whether an
    /// entry was removed.
    pub fn remove_if(&mut self, line: LineAddr, loc: NvmLoc) -> bool {
        let [i1, i2, i3, i4, i5] = split(line);
        let Some(l2) = self.root.children[i1].as_mut() else {
            return false;
        };
        let Some(l3) = l2.children[i2].as_mut() else {
            return false;
        };
        let Some(l4) = l3.children[i3].as_mut() else {
            return false;
        };
        let Some(leaf) = l4.children[i4].as_mut() else {
            return false;
        };
        if leaf.lines[i5] == Some(loc) {
            leaf.lines[i5] = None;
            leaf.used -= 1;
            self.entries -= 1;
            true
        } else {
            false
        }
    }

    /// Looks up the mapping for `line`.
    pub fn get(&self, line: LineAddr) -> Option<NvmLoc> {
        let [i1, i2, i3, i4, i5] = split(line);
        self.root.children[i1].as_ref()?.children[i2]
            .as_ref()?
            .children[i3]
            .as_ref()?
            .children[i4]
            .as_ref()?
            .lines[i5]
    }

    /// Number of mapped lines.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Whether the table maps nothing.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Total size of the tree if persisted (Fig 13's metric).
    pub fn size_bytes(&self) -> u64 {
        self.inner_nodes * INNER_NODE_BYTES + self.leaf_nodes * LEAF_NODE_BYTES
    }

    /// Inner node count.
    pub fn inner_nodes(&self) -> u64 {
        self.inner_nodes
    }

    /// Leaf node count.
    pub fn leaf_nodes(&self) -> u64 {
        self.leaf_nodes
    }

    /// Average fraction of leaf slots in use (Fig 13's occupancy analysis).
    pub fn leaf_occupancy(&self) -> f64 {
        if self.leaf_nodes == 0 {
            return 0.0;
        }
        self.entries as f64 / (self.leaf_nodes * LEAF_FANOUT as u64) as f64
    }

    /// Iterates all `(line, loc)` mappings in address order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, NvmLoc)> + '_ {
        self.root
            .children
            .iter()
            .enumerate()
            .filter_map(|(i1, c)| c.as_ref().map(|c| (i1, c)))
            .flat_map(|(i1, l2)| {
                l2.children
                    .iter()
                    .enumerate()
                    .filter_map(move |(i2, c)| c.as_ref().map(|c| (i1, i2, c)))
            })
            .flat_map(|(i1, i2, l3)| {
                l3.children
                    .iter()
                    .enumerate()
                    .filter_map(move |(i3, c)| c.as_ref().map(|c| (i1, i2, i3, c)))
            })
            .flat_map(|(i1, i2, i3, l4)| {
                l4.children
                    .iter()
                    .enumerate()
                    .filter_map(move |(i4, c)| c.as_ref().map(|c| (i1, i2, i3, i4, c)))
            })
            .flat_map(|(i1, i2, i3, i4, leaf)| {
                leaf.lines.iter().enumerate().filter_map(move |(i5, l)| {
                    l.map(|loc| {
                        let a = ((i1 as u64) << 39)
                            | ((i2 as u64) << 30)
                            | ((i3 as u64) << 21)
                            | ((i4 as u64) << 12)
                            | ((i5 as u64) << 6);
                        (LineAddr::new(a >> 6), loc)
                    })
                })
            })
    }
}

impl fmt::Debug for RadixTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RadixTable")
            .field("entries", &self.entries)
            .field("inner_nodes", &self.inner_nodes)
            .field("leaf_nodes", &self.leaf_nodes)
            .field("size_bytes", &self.size_bytes())
            .finish()
    }
}

/// The persistent Master Mapping Table: a [`RadixTable`] plus cumulative
/// NVM metadata write accounting (each 8-byte entry write is charged to
/// the NVM when the merge runs).
#[derive(Debug, Default)]
pub struct MasterTable {
    tree: RadixTable,
    meta_entry_writes: u64,
}

impl MasterTable {
    /// An empty master table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges one mapping in; returns the insert effect (the caller
    /// charges `entry_writes × 8` bytes of NVM metadata and adjusts page
    /// reference counts via `displaced`).
    pub fn merge_in(&mut self, line: LineAddr, loc: NvmLoc) -> InsertEffect {
        let fx = self.tree.insert(line, loc);
        self.meta_entry_writes += fx.entry_writes;
        fx
    }

    /// Looks up the current image's mapping for `line`.
    pub fn get(&self, line: LineAddr) -> Option<NvmLoc> {
        self.tree.get(line)
    }

    /// The underlying tree (size metrics, iteration).
    pub fn tree(&self) -> &RadixTable {
        &self.tree
    }

    /// Total 8-byte metadata entry writes performed so far.
    pub fn meta_entry_writes(&self) -> u64 {
        self.meta_entry_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    fn loc(p: u32, s: u8) -> NvmLoc {
        NvmLoc { page: p, slot: s }
    }

    #[test]
    fn insert_then_get_identity() {
        let mut t = RadixTable::new();
        let fx = t.insert(line(0x1234), loc(3, 7));
        assert_eq!(t.get(line(0x1234)), Some(loc(3, 7)));
        assert_eq!(t.get(line(0x1235)), None);
        assert_eq!(fx.displaced, None);
        assert_eq!(fx.nodes_created, 4, "first insert builds the whole path");
        assert_eq!(fx.entry_writes, 5, "4 pointers + 1 leaf entry");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reinsert_displaces_and_reuses_path() {
        let mut t = RadixTable::new();
        t.insert(line(64), loc(0, 0));
        let fx = t.insert(line(64), loc(1, 1));
        assert_eq!(fx.displaced, Some(loc(0, 0)));
        assert_eq!(fx.nodes_created, 0);
        assert_eq!(fx.entry_writes, 1);
        assert_eq!(t.len(), 1, "replacement does not grow the table");
        assert_eq!(t.get(line(64)), Some(loc(1, 1)));
    }

    #[test]
    fn same_page_lines_share_the_leaf() {
        let mut t = RadixTable::new();
        // Lines 0..64 live in page 0: one leaf after the first insert.
        for i in 0..64 {
            t.insert(line(i), loc(0, i as u8));
        }
        assert_eq!(t.leaf_nodes(), 1);
        assert_eq!(t.len(), 64);
        assert!((t.leaf_occupancy() - 1.0).abs() < 1e-9);
        // Fully populated leaf: metadata is exactly 512 B for 4 KiB of
        // data, the 12.5 % floor — plus the inner path.
        assert_eq!(t.size_bytes(), 4 * INNER_NODE_BYTES + LEAF_NODE_BYTES);
    }

    #[test]
    fn sparse_lines_inflate_occupancy_metric() {
        let mut t = RadixTable::new();
        // One line per page across 10 pages: 10 leaves at 1/64 occupancy.
        for p in 0..10u64 {
            t.insert(line(p * 64), loc(0, 0));
        }
        assert_eq!(t.leaf_nodes(), 10);
        assert!((t.leaf_occupancy() - 10.0 / 640.0).abs() < 1e-9);
    }

    #[test]
    fn iter_lists_all_mappings_in_order() {
        let mut t = RadixTable::new();
        let addrs = [5u64, 64, 1 << 20, (1 << 30) + 3];
        for (i, &a) in addrs.iter().enumerate() {
            t.insert(line(a), loc(i as u32, 0));
        }
        let got: Vec<u64> = t.iter().map(|(l, _)| l.raw()).collect();
        assert_eq!(got, vec![5, 64, 1 << 20, (1 << 30) + 3]);
        for (l, loc_) in t.iter() {
            assert_eq!(t.get(l), Some(loc_));
        }
    }

    #[test]
    fn distant_addresses_use_distinct_paths() {
        let mut t = RadixTable::new();
        t.insert(line(0), loc(0, 0));
        let fx = t.insert(line(1 << 41), loc(1, 0)); // differs at the top level
        assert_eq!(fx.nodes_created, 4);
        assert_eq!(t.inner_nodes(), 1 + 3 + 3);
        assert_eq!(t.leaf_nodes(), 2);
    }

    #[test]
    fn mapping_word_round_trips() {
        for &(p, s) in &[(0u32, 0u8), (1, 63), (0xFFFF_FFFF, 17), (42, 5)] {
            let w = encode_loc(loc(p, s));
            assert_eq!(decode_loc(w), Some(loc(p, s)), "page {p} slot {s}");
            assert_eq!(w.count_ones() % 2, 1, "odd parity");
        }
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        for &(p, s) in &[(0u32, 0u8), (3, 9), (0xDEAD_BEEF, 63)] {
            let w = encode_loc(loc(p, s));
            for bit in 0..64 {
                assert_eq!(
                    decode_loc(w ^ (1u64 << bit)),
                    None,
                    "flip of bit {bit} in {w:#x} must break parity"
                );
            }
        }
    }

    #[test]
    fn master_table_accumulates_meta_writes() {
        let mut m = MasterTable::new();
        m.merge_in(line(0), loc(0, 0));
        m.merge_in(line(1), loc(0, 1));
        // First: 5 writes; second reuses the path: 1 write.
        assert_eq!(m.meta_entry_writes(), 6);
        assert_eq!(m.get(line(1)), Some(loc(0, 1)));
        assert_eq!(m.tree().len(), 2);
    }
}
