//! The Overlay Memory Controller (paper §V).
//!
//! One OMC owns an address partition: it receives versions evicted from
//! the CST frontend, packs them into per-epoch overlay data pages on NVM,
//! tracks them in volatile per-epoch mapping tables, and continuously
//! merges committed epochs into the persistent Master Mapping Table. It
//! garbage-collects fully-superseded pages by reference count and, under
//! storage pressure, performs *version compaction* (§V-D).

use super::buffer::OmcBuffer;
use super::pool::{NvmLoc, PagePool, SLOTS_PER_PAGE};
use super::table::{encode_loc, MasterTable, RadixTable};
use nvsim::addr::{LineAddr, Token};
use nvsim::clock::Cycle;
use nvsim::fastmap::FastMap;
use nvsim::fault::PersistPayload;
use nvsim::nvm::Nvm;
use nvsim::stats::NvmWriteKind;
use std::collections::BTreeMap;

/// What happens to per-epoch mapping tables after their epoch is merged
/// into the master table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotRetention {
    /// Reclaim the DRAM immediately (crash-recovery-only deployments; the
    /// paper's §V-D "DRAM pages used by per-epoch tables can be reclaimed
    /// as soon as they are merged"). Time-travel reads of merged epochs
    /// become unavailable.
    DropMerged,
    /// Keep per-epoch tables for time-travel / debugging reads (§V-E).
    KeepAll,
}

/// OMC tuning knobs.
#[derive(Clone, Debug)]
pub struct OmcConfig {
    /// Initial overlay pool size in 4-KiB pages.
    pub pool_pages: usize,
    /// Pool utilization above which version compaction starts (§V-F
    /// "space overhead threshold").
    pub compaction_threshold: f64,
    /// Pages the OS grants when the pool is exhausted and compaction
    /// cannot help (0 disables growth).
    pub grow_pages: usize,
    /// Table retention policy.
    pub retention: SnapshotRetention,
    /// Battery-backed write-back buffer geometry `(sets, ways)`, if any.
    pub buffer: Option<(u64, u32)>,
}

impl Default for OmcConfig {
    fn default() -> Self {
        Self {
            pool_pages: 64 * 1024, // 256 MiB of overlay storage
            compaction_threshold: 0.90,
            grow_pages: 16 * 1024,
            retention: SnapshotRetention::KeepAll,
            buffer: None,
        }
    }
}

/// Cumulative OMC statistics.
#[derive(Clone, Debug, Default)]
pub struct OmcStats {
    /// Versions received from the frontend.
    pub versions_received: u64,
    /// Version writes absorbed by the battery-backed buffer.
    pub buffer_hits: u64,
    /// Version writes that reached the NVM pool.
    pub buffer_misses: u64,
    /// Versions copied by compaction (the §V-D write amplification).
    pub compaction_copies: u64,
    /// Overlay pages freed by GC or compaction.
    pub pages_freed: u64,
    /// Compaction passes run.
    pub compactions: u64,
}

#[derive(Debug, Default)]
struct EpochState {
    /// Volatile mapping table for the epoch (None once reclaimed).
    table: Option<RadixTable>,
    /// Data pages belonging to the epoch.
    pages: Vec<u32>,
    /// The open page and its next free slot.
    open: Option<(u32, u8)>,
    /// Versions of this epoch were relocated by compaction; per-epoch
    /// reads are no longer exact.
    compacted: bool,
}

/// One Overlay Memory Controller.
pub struct Omc {
    cfg: OmcConfig,
    pool: PagePool,
    epochs: BTreeMap<u64, EpochState>,
    master: MasterTable,
    merged_through: u64,
    /// Master-referenced version count per data page (Fig 9's "Ref Count").
    refcount: FastMap<u32, u32>,
    /// Which lines live in which page slot (page occupancy metadata, used
    /// by GC/compaction).
    page_contents: FastMap<u32, Vec<(LineAddr, u8)>>,
    buffer: Option<OmcBuffer>,
    stats: OmcStats,
    /// Re-entrancy guard: compaction's own slot allocations must not
    /// trigger another compaction pass.
    compacting: bool,
}

impl Omc {
    /// Creates an OMC.
    pub fn new(cfg: OmcConfig) -> Self {
        let buffer = cfg.buffer.map(|(sets, ways)| OmcBuffer::new(sets, ways));
        Self {
            pool: PagePool::new(cfg.pool_pages),
            cfg,
            epochs: BTreeMap::new(),
            master: MasterTable::new(),
            merged_through: 0,
            refcount: FastMap::new(),
            page_contents: FastMap::new(),
            buffer,
            stats: OmcStats::default(),
            compacting: false,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &OmcConfig {
        &self.cfg
    }

    /// Publishes this OMC's metrics under `prefix` (e.g. `omc.0`).
    pub fn metrics_into(&self, reg: &mut nvsim::metrics::Registry, prefix: &str) {
        let p = |s: &str| format!("{prefix}.{s}");
        reg.set_counter(&p("versions_received"), self.stats.versions_received);
        reg.set_counter(&p("buffer_hits"), self.stats.buffer_hits);
        reg.set_counter(&p("buffer_misses"), self.stats.buffer_misses);
        reg.set_counter(&p("compaction_copies"), self.stats.compaction_copies);
        reg.set_counter(&p("compactions"), self.stats.compactions);
        reg.set_counter(&p("pages_freed"), self.stats.pages_freed);
        reg.set_counter(&p("merged_through"), self.merged_through);
        reg.set_counter(&p("master.entries"), self.master.tree().len());
        reg.set_counter(&p("master.bytes"), self.master.tree().size_bytes());
        reg.set_counter(&p("pool.high_water_pages"), self.pool.high_water() as u64);
        reg.set_gauge(&p("pool.utilization"), self.pool.utilization());
        reg.set_counter(&p("epoch_table_dram_bytes"), self.epoch_table_dram_bytes());
        reg.set_gauge(
            &p("buffer_occupancy"),
            self.buffer.as_ref().map_or(0.0, |b| b.len() as f64),
        );
    }

    /// Statistics so far.
    pub fn stats(&self) -> &OmcStats {
        &self.stats
    }

    /// The master mapping table.
    pub fn master(&self) -> &MasterTable {
        &self.master
    }

    /// The overlay page pool.
    pub fn pool(&self) -> &PagePool {
        &self.pool
    }

    /// Highest epoch merged into the master table.
    pub fn merged_through(&self) -> u64 {
        self.merged_through
    }

    /// DRAM consumed by volatile per-epoch tables right now.
    pub fn epoch_table_dram_bytes(&self) -> u64 {
        self.epochs
            .values()
            .filter_map(|s| s.table.as_ref())
            .map(RadixTable::size_bytes)
            .sum()
    }

    /// Receives one version from the frontend at time `now`; writes it to
    /// the buffer or the NVM pool. Returns the backpressure stall an
    /// access-path enqueuer would observe (background callers ignore it).
    pub fn receive_version(
        &mut self,
        nvm: &mut Nvm,
        now: Cycle,
        line: LineAddr,
        token: Token,
        abs_epoch: u64,
    ) -> Cycle {
        self.stats.versions_received += 1;
        if self.buffer.is_some() {
            let outcome = self
                .buffer
                .as_mut()
                .expect("checked")
                .offer(line, token, abs_epoch);
            if outcome.hit {
                self.stats.buffer_hits += 1;
                return 0;
            }
            self.stats.buffer_misses += 1;
            let mut stall = 0;
            for v in outcome.spilled {
                stall = stall.max(self.commit_version(nvm, now, v.line, v.token, v.abs_epoch));
            }
            stall
        } else {
            self.stats.buffer_misses += 1;
            self.commit_version(nvm, now, line, token, abs_epoch)
        }
    }

    /// Writes a version to its epoch's overlay page and maps it in the
    /// epoch table. Returns the backpressure stall.
    fn commit_version(
        &mut self,
        nvm: &mut Nvm,
        now: Cycle,
        line: LineAddr,
        token: Token,
        abs_epoch: u64,
    ) -> Cycle {
        // Redundant write-back within one epoch (no buffer to absorb it):
        // overwrite the already-allocated slot.
        if let Some(loc) = self
            .epochs
            .get(&abs_epoch)
            .and_then(|s| s.table.as_ref())
            .and_then(|t| t.get(line))
        {
            self.pool.write(loc, token);
            let t = nvm.write(now, line.raw(), NvmWriteKind::Data, 64);
            nvm.annotate_last(PersistPayload::Version {
                line,
                token,
                epoch: abs_epoch,
            });
            return t.backpressure_stall(now);
        }

        let copies_before = self.stats.compaction_copies;
        let loc = self.allocate_slot(abs_epoch, line);
        // Compaction triggered inside the allocation rewrites live
        // versions: charge their NVM data writes (the §V-D write
        // amplification) — background traffic, no stall returned.
        let copied = self.stats.compaction_copies - copies_before;
        for i in 0..copied {
            nvm.write(now, line.raw().wrapping_add(i), NvmWriteKind::Data, 64);
        }
        self.pool.write(loc, token);
        let st = self
            .epochs
            .get_mut(&abs_epoch)
            .expect("created by allocate");
        st.table
            .as_mut()
            .expect("unmerged epoch keeps its table")
            .insert(line, loc);
        let t = nvm.write(now, line.raw(), NvmWriteKind::Data, 64);
        nvm.annotate_last(PersistPayload::Version {
            line,
            token,
            epoch: abs_epoch,
        });
        t.backpressure_stall(now)
    }

    /// Finds a free slot in the epoch's open page, opening a new page (and
    /// compacting / growing under pressure) as needed.
    fn allocate_slot(&mut self, abs_epoch: u64, line: LineAddr) -> NvmLoc {
        let needs_page = match self.epochs.get(&abs_epoch).and_then(|s| s.open) {
            Some((_, slot)) => slot as usize >= SLOTS_PER_PAGE,
            None => true,
        };
        if needs_page {
            if !self.compacting && self.pool.utilization() >= self.cfg.compaction_threshold {
                self.compact(abs_epoch);
            }
            let page = match self.pool.allocate() {
                Ok(p) => p,
                Err(_) => {
                    if !self.compacting {
                        self.compact(abs_epoch);
                    }
                    match self.pool.allocate() {
                        Ok(p) => p,
                        Err(_) => {
                            assert!(
                                self.cfg.grow_pages > 0,
                                "overlay pool exhausted and growth disabled"
                            );
                            self.pool.grow(self.cfg.grow_pages);
                            self.pool.allocate().expect("grown pool has space")
                        }
                    }
                }
            };
            let st = self.epochs.entry(abs_epoch).or_insert_with(|| EpochState {
                table: Some(RadixTable::new()),
                ..EpochState::default()
            });
            if st.table.is_none() {
                st.table = Some(RadixTable::new());
            }
            st.pages.push(page);
            st.open = Some((page, 0));
            self.page_contents.insert(page, Vec::new());
        }
        let st = self.epochs.get_mut(&abs_epoch).expect("page opened");
        let (page, slot) = st.open.expect("open page exists");
        st.open = Some((page, slot + 1));
        self.page_contents
            .get_mut(&page)
            .expect("page registered")
            .push((line, slot));
        NvmLoc { page, slot }
    }

    /// Merges every epoch table up to and including `through` into the
    /// master table (background, §V-C). Buffered versions of those epochs
    /// are spilled first so their NVM locations exist. Returns the
    /// metadata bytes written (charged to NVM by the caller via the
    /// `nvm.write` calls already performed here).
    pub fn merge_through(&mut self, nvm: &mut Nvm, now: Cycle, through: u64) -> u64 {
        if let Some(buf) = self.buffer.as_mut() {
            let spill = buf.drain_below(through + 1);
            for v in spill {
                self.stats.buffer_misses += 1;
                self.commit_version(nvm, now, v.line, v.token, v.abs_epoch);
            }
        }
        let mut meta_entry_writes = 0u64;
        // Leaf mapping entries merged this call, in merge order, as the
        // encoded 8-byte words the metadata chunks carry to NVM.
        let mut merged_words: Vec<(LineAddr, u64)> = Vec::new();
        let to_merge: Vec<u64> = self
            .epochs
            .range(self.merged_through + 1..=through)
            .map(|(e, _)| *e)
            .collect();
        for e in to_merge {
            let entries: Vec<(LineAddr, NvmLoc)> = {
                let st = self.epochs.get_mut(&e).expect("listed");
                match self.cfg.retention {
                    SnapshotRetention::DropMerged => st
                        .table
                        .take()
                        .map(|t| t.iter().collect())
                        .unwrap_or_default(),
                    SnapshotRetention::KeepAll => st
                        .table
                        .as_ref()
                        .map(|t| t.iter().collect())
                        .unwrap_or_default(),
                }
            };
            for (l, loc) in entries {
                let fx = self.master.merge_in(l, loc);
                meta_entry_writes += fx.entry_writes;
                merged_words.push((l, encode_loc(loc)));
                *self.refcount.or_default(loc.page) += 1;
                if let Some(old) = fx.displaced {
                    if old != loc {
                        self.unreference(old);
                    }
                }
            }
        }
        self.merged_through = self.merged_through.max(through);
        // Metadata streams to NVM in 256-byte chunks; each chunk carries
        // up to 32 of the merged leaf entries (later chunks are pointer
        // traffic), so a crash mid-merge durably retains an entry prefix.
        let meta_bytes = meta_entry_writes * 8;
        let mut remaining = meta_bytes;
        let mut chunk_key = now;
        let mut chunk_ix = 0usize;
        while remaining > 0 {
            let c = remaining.min(256);
            nvm.write(now, chunk_key, NvmWriteKind::MapMetadata, c);
            let lo = (chunk_ix * 32).min(merged_words.len());
            let hi = (lo + 32).min(merged_words.len());
            nvm.annotate_last(PersistPayload::MasterChunk {
                entries: merged_words[lo..hi].to_vec(),
            });
            chunk_key = chunk_key.wrapping_add(1);
            chunk_ix += 1;
            remaining -= c;
        }
        meta_bytes
    }

    /// Drops a master reference to a version location; frees the page when
    /// no references remain and the policy allows.
    fn unreference(&mut self, loc: NvmLoc) {
        let rc = self
            .refcount
            .get_mut(&loc.page)
            .expect("displaced location was referenced");
        *rc -= 1;
        if *rc == 0 && self.cfg.retention == SnapshotRetention::DropMerged {
            self.free_page(loc.page);
        }
    }

    fn free_page(&mut self, page: u32) {
        self.refcount.remove(&page);
        self.page_contents.remove(&page);
        for st in self.epochs.values_mut() {
            st.pages.retain(|&p| p != page);
            if let Some((open, _)) = st.open {
                if open == page {
                    st.open = None;
                }
            }
        }
        self.pool.free(page);
        self.stats.pages_freed += 1;
    }

    /// §V-D version compaction: starting from the oldest merged epoch that
    /// still owns pages, copy live (master-referenced) versions into
    /// `current_epoch` as if freshly written, then free the source pages.
    pub fn compact(&mut self, current_epoch: u64) {
        if self.compacting {
            return;
        }
        self.compacting = true;
        self.stats.compactions += 1;
        let candidates: Vec<u64> = self
            .epochs
            .range(..=self.merged_through)
            .filter(|(e, s)| **e < current_epoch && !s.pages.is_empty())
            .map(|(e, _)| *e)
            .collect();
        for e in candidates {
            let pages = self
                .epochs
                .get(&e)
                .map(|s| s.pages.clone())
                .unwrap_or_default();
            for page in pages {
                let contents = self.page_contents.get(&page).cloned().unwrap_or_default();
                let mut moved = Vec::new();
                let mut dead = Vec::new();
                for (line, slot) in contents {
                    let loc = NvmLoc { page, slot };
                    if self.master.get(line) == Some(loc) {
                        let token = self.pool.read(loc).expect("live version has data");
                        moved.push((line, token));
                    } else {
                        dead.push((line, loc));
                    }
                }
                // Dead versions are reclaimed with the page: drop their
                // per-epoch entries so no stale mapping can alias into a
                // reused page (such reads correctly become None).
                if let Some(st) = self.epochs.get_mut(&e) {
                    if let Some(t) = st.table.as_mut() {
                        for (line, loc) in &dead {
                            t.remove_if(*line, *loc);
                        }
                    }
                }
                for (line, token) in moved {
                    self.stats.compaction_copies += 1;
                    // The paper sketches copying live versions "as if
                    // written in the current epoch". That is only sound
                    // if the master-live version is globally newest — but
                    // a newer version may still be unpersisted in the
                    // caches (invisible to the OMC) or unmerged in a
                    // later epoch table; re-tagging the old data above it
                    // would resurrect stale values. We therefore relocate
                    // within the version's *own* epoch: per-line history
                    // order is preserved exactly, dead slots are still
                    // reclaimed, and time-travel reads stay valid (see
                    // DESIGN.md §7).
                    let target_epoch = e;
                    let new_loc = self.allocate_slot(target_epoch, line);
                    let _ = current_epoch;
                    self.pool.write(new_loc, token);
                    let st = self.epochs.get_mut(&target_epoch).expect("slot allocated");
                    if let Some(t) = st.table.as_mut() {
                        t.insert(line, new_loc);
                    }
                    // Master points at the new home immediately; a later
                    // merge re-inserting the same location is idempotent.
                    let fx = self.master.merge_in(line, new_loc);
                    *self.refcount.or_default(new_loc.page) += 1;
                    if let Some(old) = fx.displaced {
                        let rc = self.refcount.get_mut(&old.page).expect("referenced");
                        *rc -= 1;
                    }
                }
                // The page now holds no live versions; free it.
                if self.refcount.get(&page).copied().unwrap_or(0) == 0 {
                    self.free_page(page);
                }
            }
            if let Some(st) = self.epochs.get_mut(&e) {
                // Same-epoch relocation keeps the epoch's history exact,
                // so per-epoch (time-travel) reads remain valid.
                st.compacted = false;
                st.open = None;
            }
            // Oldest-first, stop as soon as the pressure is relieved
            // (§V-D compaction starts "from the oldest epoch still having
            // versions mapped by Mmaster").
            if self.pool.utilization() < self.cfg.compaction_threshold {
                break;
            }
        }
        self.compacting = false;
    }

    /// Simulates a power loss + restart of this OMC (§V-E "Volatile OMC
    /// data structures are also rebuilt during the recovery"): volatile
    /// per-epoch tables and occupancy metadata are dropped, then the page
    /// reference counts are rebuilt by scanning the persistent master
    /// table. Requires the battery-backed buffer to have been flushed
    /// (it is part of the persistence domain).
    ///
    /// # Panics
    /// Panics if the buffer still holds versions (the battery flush must
    /// run first).
    pub fn simulate_reboot(&mut self) {
        if let Some(b) = &self.buffer {
            assert!(
                b.is_empty(),
                "flush the battery-backed buffer before reboot"
            );
        }
        // Volatile state is lost.
        self.epochs.clear();
        self.refcount.clear();
        self.page_contents.clear();
        // Rebuild refcounts (and page occupancy) from the master table.
        let entries: Vec<(LineAddr, NvmLoc)> = self.master.tree().iter().collect();
        for (line, loc) in entries {
            *self.refcount.or_default(loc.page) += 1;
            self.page_contents
                .or_default(loc.page)
                .push((line, loc.slot));
        }
    }

    /// Drains the battery-backed buffer (shutdown / final flush).
    pub fn drain_buffer(&mut self, nvm: &mut Nvm, now: Cycle) {
        if let Some(buf) = self.buffer.as_mut() {
            let all = buf.drain();
            for v in all {
                self.stats.buffer_misses += 1;
                self.commit_version(nvm, now, v.line, v.token, v.abs_epoch);
            }
        }
    }

    /// Resolves a mapping-table location to its stored version — the one
    /// shared helper behind every read path (master reads, time-travel
    /// fall-through, epoch deltas, image iteration), so the
    /// location-to-data step cannot drift between them.
    #[inline]
    fn read_loc(&self, loc: NvmLoc) -> Option<Token> {
        self.pool.read(loc)
    }

    /// Reads the current consistent image's version of `line` (via the
    /// master table), as crash recovery does.
    pub fn read_master(&self, line: LineAddr) -> Option<Token> {
        self.master.get(line).and_then(|loc| self.read_loc(loc))
    }

    /// Time-travel read (§V-E): the version of `line` visible at `epoch`,
    /// found by falling through per-epoch tables from `epoch` downward.
    ///
    /// Returns `None` when the line has no version at or before `epoch`,
    /// or `Err`-like `None` when the covering epoch's table was reclaimed
    /// or compacted away (use [`SnapshotRetention::KeepAll`] to retain).
    pub fn time_travel(&self, line: LineAddr, epoch: u64) -> Option<Token> {
        if let Some(buf) = self.buffer.as_ref() {
            if let Some(v) = buf.get(line) {
                if v.abs_epoch <= epoch {
                    return Some(v.token);
                }
            }
        }
        for (_, st) in self.epochs.range(..=epoch).rev() {
            if st.compacted {
                continue;
            }
            if let Some(t) = st.table.as_ref() {
                if let Some(loc) = t.get(line) {
                    return self.read_loc(loc);
                }
            }
        }
        None
    }

    /// Epochs this OMC has versions for (ascending), with whether each is
    /// still individually readable (table retained and not compacted).
    pub fn epochs(&self) -> impl Iterator<Item = (u64, bool)> + '_ {
        self.epochs
            .iter()
            .map(|(e, st)| (*e, st.table.is_some() && !st.compacted))
    }

    /// Iterates the versions captured in exactly `epoch` (its incremental
    /// delta), if the epoch's table is retained.
    pub fn epoch_delta(&self, epoch: u64) -> Option<impl Iterator<Item = (LineAddr, Token)> + '_> {
        let st = self.epochs.get(&epoch)?;
        if st.compacted {
            return None;
        }
        let t = st.table.as_ref()?;
        Some(
            t.iter()
                .filter_map(|(l, loc)| self.read_loc(loc).map(|tok| (l, tok))),
        )
    }

    /// Iterates the master image `(line, token)`.
    pub fn master_image(&self) -> impl Iterator<Item = (LineAddr, Token)> + '_ {
        self.master
            .tree()
            .iter()
            .filter_map(|(l, loc)| self.read_loc(loc).map(|t| (l, t)))
    }

    /// The buffer, if configured (statistics).
    pub fn buffer(&self) -> Option<&OmcBuffer> {
        self.buffer.as_ref()
    }
}

impl std::fmt::Debug for Omc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Omc")
            .field("epochs", &self.epochs.len())
            .field("merged_through", &self.merged_through)
            .field("master_entries", &self.master.tree().len())
            .field("pool_allocated", &self.pool.allocated())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nvm() -> Nvm {
        Nvm::new(4, 400, 200, 8, 100_000)
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    fn omc() -> Omc {
        Omc::new(OmcConfig {
            pool_pages: 8,
            grow_pages: 8,
            ..OmcConfig::default()
        })
    }

    #[test]
    fn versions_commit_and_merge_into_master() {
        let mut o = omc();
        let mut n = nvm();
        o.receive_version(&mut n, 0, line(1), 11, 1);
        o.receive_version(&mut n, 0, line(2), 22, 1);
        assert_eq!(o.read_master(line(1)), None, "not merged yet");
        o.merge_through(&mut n, 0, 1);
        assert_eq!(o.read_master(line(1)), Some(11));
        assert_eq!(o.read_master(line(2)), Some(22));
        assert_eq!(o.merged_through(), 1);
        assert!(n.stats().bytes(NvmWriteKind::Data) >= 128);
        assert!(n.stats().bytes(NvmWriteKind::MapMetadata) > 0);
    }

    #[test]
    fn newer_epochs_win_in_master() {
        let mut o = omc();
        let mut n = nvm();
        o.receive_version(&mut n, 0, line(1), 11, 1);
        o.receive_version(&mut n, 0, line(1), 99, 2);
        o.merge_through(&mut n, 0, 2);
        assert_eq!(o.read_master(line(1)), Some(99));
    }

    #[test]
    fn time_travel_falls_through_to_older_epochs() {
        let mut o = omc();
        let mut n = nvm();
        o.receive_version(&mut n, 0, line(1), 11, 1);
        o.receive_version(&mut n, 0, line(2), 22, 2);
        o.receive_version(&mut n, 0, line(1), 33, 3);
        o.merge_through(&mut n, 0, 3);
        assert_eq!(o.time_travel(line(1), 1), Some(11));
        assert_eq!(o.time_travel(line(1), 2), Some(11), "fall-through to e1");
        assert_eq!(o.time_travel(line(1), 3), Some(33));
        assert_eq!(o.time_travel(line(2), 1), None, "not yet written at e1");
        assert_eq!(o.time_travel(line(2), 3), Some(22));
    }

    #[test]
    fn same_epoch_rewrite_reuses_the_slot() {
        let mut o = omc();
        let mut n = nvm();
        o.receive_version(&mut n, 0, line(1), 11, 1);
        o.receive_version(&mut n, 0, line(1), 12, 1);
        o.merge_through(&mut n, 0, 1);
        assert_eq!(o.read_master(line(1)), Some(12));
        assert_eq!(o.pool().allocated(), 1, "one page, one slot reused");
    }

    #[test]
    fn buffer_absorbs_same_epoch_rewrites() {
        let mut o = Omc::new(OmcConfig {
            pool_pages: 8,
            buffer: Some((4, 2)),
            ..OmcConfig::default()
        });
        let mut n = nvm();
        o.receive_version(&mut n, 0, line(1), 11, 1);
        o.receive_version(&mut n, 0, line(1), 12, 1);
        o.receive_version(&mut n, 0, line(1), 13, 1);
        assert_eq!(o.stats().buffer_hits, 2);
        assert_eq!(n.stats().writes(NvmWriteKind::Data), 0, "all buffered");
        o.merge_through(&mut n, 0, 1);
        assert_eq!(
            n.stats().writes(NvmWriteKind::Data),
            1,
            "one spill at merge"
        );
        assert_eq!(o.read_master(line(1)), Some(13));
    }

    #[test]
    fn gc_frees_fully_superseded_pages_under_drop_merged() {
        let mut o = Omc::new(OmcConfig {
            pool_pages: 8,
            retention: SnapshotRetention::DropMerged,
            ..OmcConfig::default()
        });
        let mut n = nvm();
        // Epoch 1 writes 64 lines → exactly one full page.
        for i in 0..64 {
            o.receive_version(&mut n, 0, line(i), 100 + i, 1);
        }
        o.merge_through(&mut n, 0, 1);
        assert_eq!(o.pool().allocated(), 1);
        // Epoch 2 rewrites all 64 lines → epoch-1 page fully superseded.
        for i in 0..64 {
            o.receive_version(&mut n, 0, line(i), 200 + i, 2);
        }
        o.merge_through(&mut n, 0, 2);
        assert_eq!(o.stats().pages_freed, 1, "epoch-1 page collected");
        assert_eq!(o.pool().allocated(), 1);
        assert_eq!(o.read_master(line(5)), Some(205));
    }

    #[test]
    fn keep_all_retains_old_epochs_for_time_travel() {
        let mut o = omc();
        let mut n = nvm();
        for i in 0..64 {
            o.receive_version(&mut n, 0, line(i), 100 + i, 1);
        }
        o.merge_through(&mut n, 0, 1);
        for i in 0..64 {
            o.receive_version(&mut n, 0, line(i), 200 + i, 2);
        }
        o.merge_through(&mut n, 0, 2);
        assert_eq!(o.stats().pages_freed, 0);
        assert_eq!(o.time_travel(line(5), 1), Some(105));
        assert_eq!(o.time_travel(line(5), 2), Some(205));
    }

    #[test]
    fn compaction_copies_live_versions_and_frees_pages() {
        let mut o = Omc::new(OmcConfig {
            pool_pages: 8,
            retention: SnapshotRetention::KeepAll,
            ..OmcConfig::default()
        });
        let mut n = nvm();
        // Epoch 1: 64 lines (1 page). Epoch 2 rewrites half of them.
        for i in 0..64 {
            o.receive_version(&mut n, 0, line(i), 100 + i, 1);
        }
        for i in 0..32 {
            o.receive_version(&mut n, 0, line(i), 200 + i, 2);
        }
        o.merge_through(&mut n, 0, 2);
        let before = o.pool().allocated();
        o.compact(3);
        // Lines 32..64 (still live from epoch 1) are relocated into a
        // fresh epoch-1 page (same-epoch relocation — see the compaction
        // comment); the old half-dead page is freed.
        assert_eq!(o.stats().compaction_copies, 32);
        assert!(o.pool().allocated() <= before, "compaction frees pages");
        assert!(o.stats().pages_freed >= 1);
        for i in 32..64 {
            assert_eq!(o.read_master(line(i)), Some(100 + i), "line {i} survives");
        }
        for i in 0..32 {
            assert_eq!(o.read_master(line(i)), Some(200 + i));
        }
        // Live versions keep their per-epoch history after relocation;
        // superseded (dead) versions are reclaimed — reading them at
        // their old epoch now correctly falls through to nothing.
        assert_eq!(o.time_travel(line(40), 1), Some(140));
        assert_eq!(o.time_travel(line(5), 1), None, "dead version reclaimed");
        assert_eq!(o.time_travel(line(5), 2), Some(205));
    }

    #[test]
    fn pool_pressure_triggers_growth_when_compaction_cannot_help() {
        let mut o = Omc::new(OmcConfig {
            pool_pages: 2,
            grow_pages: 4,
            ..OmcConfig::default()
        });
        let mut n = nvm();
        // 3 pages worth of distinct live lines in one epoch.
        for i in 0..192 {
            o.receive_version(&mut n, 0, line(i), i, 1);
        }
        assert!(o.pool().total_pages() > 2, "pool grew under pressure");
        o.merge_through(&mut n, 0, 1);
        for i in 0..192 {
            assert_eq!(o.read_master(line(i)), Some(i));
        }
    }
}
