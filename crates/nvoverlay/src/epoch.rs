//! Epochs and 16-bit OID tags with wrap-around.
//!
//! NVOverlay identifies epochs with 16-bit integers stored in every cache
//! line's OID tag (paper §III-C). Because the tag is finite, the paper
//! partitions the epoch space into two groups (L and U) with a persistent
//! *epoch-sense* bit, and bounds inter-VD skew to half the space (§IV-D).
//!
//! This module provides:
//!
//! * [`Epoch`] — the 16-bit tag with *serial-number arithmetic* comparison
//!   (`newer_than`), valid as long as live tags stay within half the space
//!   of each other — exactly the invariant the epoch-sense machinery
//!   enforces.
//! * [`reconstruct_abs`] — maps a 16-bit tag back to the unique absolute
//!   (64-bit) epoch within the half-space window around a reference; this
//!   is how the OMC keys its per-epoch tables by absolute epoch while the
//!   hardware only carries 16-bit tags.
//! * [`EpochGroup`] / [`Epoch::group`] — the L/U group split used by the
//!   wrap-around flush protocol in the versioned hierarchy.

use std::fmt;

/// Half the 16-bit epoch space: the maximum tolerated skew between any two
/// live epoch tags.
pub const HALF_SPACE: u64 = 1 << 15;

/// A 16-bit epoch tag (the paper's OID value).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Epoch(pub u16);

impl Epoch {
    /// The tag for an absolute epoch number.
    #[inline]
    pub fn from_abs(abs: u64) -> Self {
        Epoch(abs as u16)
    }

    /// Raw tag value.
    #[inline]
    pub fn raw(self) -> u16 {
        self.0
    }

    /// Serial-number comparison: is `self` newer than `other`?
    ///
    /// Correct whenever the two tags are within [`HALF_SPACE`] absolute
    /// epochs of each other (the invariant the epoch-sense protocol
    /// maintains). Equal tags are not newer.
    ///
    /// ```
    /// use nvoverlay::epoch::Epoch;
    /// assert!(Epoch(5).newer_than(Epoch(3)));
    /// assert!(!Epoch(3).newer_than(Epoch(5)));
    /// // Wrap-around: 2 is newer than 65_530.
    /// assert!(Epoch(2).newer_than(Epoch(65_530)));
    /// ```
    #[inline]
    pub fn newer_than(self, other: Epoch) -> bool {
        self != other && self.0.wrapping_sub(other.0) < HALF_SPACE as u16
    }

    /// `self` is `other` or newer.
    #[inline]
    pub fn at_least(self, other: Epoch) -> bool {
        self == other || self.newer_than(other)
    }

    /// The group (L or U) this tag belongs to (paper §IV-D).
    #[inline]
    pub fn group(self) -> EpochGroup {
        if self.0 < HALF_SPACE as u16 {
            EpochGroup::Lower
        } else {
            EpochGroup::Upper
        }
    }
}

impl fmt::Debug for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Epoch({})", self.0)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One of the two wrap-around groups of the 16-bit epoch space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EpochGroup {
    /// Tags `0..32768`.
    Lower,
    /// Tags `32768..65536`.
    Upper,
}

impl EpochGroup {
    /// The other group.
    pub fn other(self) -> EpochGroup {
        match self {
            EpochGroup::Lower => EpochGroup::Upper,
            EpochGroup::Upper => EpochGroup::Lower,
        }
    }
}

/// Reconstructs the absolute epoch a 16-bit tag denotes, given any
/// reference absolute epoch within [`HALF_SPACE`] of the truth.
///
/// Returns the unique absolute epoch congruent to `tag` (mod 2^16) in the
/// window `(reference - HALF_SPACE, reference + HALF_SPACE]`, saturating at
/// zero for references near the origin.
///
/// ```
/// use nvoverlay::epoch::{reconstruct_abs, Epoch};
/// assert_eq!(reconstruct_abs(Epoch(5), 3), 5);
/// assert_eq!(reconstruct_abs(Epoch(65_535), 65_536 + 10), 65_535);
/// assert_eq!(reconstruct_abs(Epoch(2), 65_530), 65_538);
/// ```
pub fn reconstruct_abs(tag: Epoch, reference: u64) -> u64 {
    let base = reference & !0xFFFF;
    let cand = base | tag.0 as u64;
    // Pick the candidate (cand - 2^16, cand, cand + 2^16) closest to the
    // reference within the half-space window.
    let diff = cand as i128 - reference as i128;
    if diff > HALF_SPACE as i128 {
        cand - (1 << 16)
    } else if diff <= -(HALF_SPACE as i128) {
        cand + (1 << 16)
    } else {
        cand
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_than_basic_ordering() {
        assert!(Epoch(10).newer_than(Epoch(9)));
        assert!(!Epoch(9).newer_than(Epoch(10)));
        assert!(!Epoch(9).newer_than(Epoch(9)));
        assert!(Epoch(9).at_least(Epoch(9)));
        assert!(Epoch(10).at_least(Epoch(9)));
    }

    #[test]
    fn newer_than_across_wrap() {
        assert!(Epoch(0).newer_than(Epoch(u16::MAX)));
        assert!(Epoch(100).newer_than(Epoch(u16::MAX - 100)));
        assert!(!Epoch(u16::MAX).newer_than(Epoch(100)));
    }

    #[test]
    fn newer_than_at_half_space_boundary() {
        // Exactly half-space apart: a is NOT newer (distance == HALF_SPACE).
        assert!(!Epoch(32_768).newer_than(Epoch(0)));
        // One less than half-space: newer.
        assert!(Epoch(32_767).newer_than(Epoch(0)));
    }

    #[test]
    fn groups_split_the_space() {
        assert_eq!(Epoch(0).group(), EpochGroup::Lower);
        assert_eq!(Epoch(32_767).group(), EpochGroup::Lower);
        assert_eq!(Epoch(32_768).group(), EpochGroup::Upper);
        assert_eq!(Epoch(u16::MAX).group(), EpochGroup::Upper);
        assert_eq!(EpochGroup::Lower.other(), EpochGroup::Upper);
    }

    #[test]
    fn reconstruct_identity_within_window() {
        for abs in [0u64, 5, 1000, 65_535, 65_536, 200_000, 1 << 40] {
            for delta in [0i64, 1, -1, 100, -100, 30_000, -30_000] {
                let reference = abs as i64 + delta;
                if reference < 0 {
                    continue;
                }
                let got = reconstruct_abs(Epoch::from_abs(abs), reference as u64);
                if got != abs {
                    // Only allowed to differ when abs is outside the window.
                    let d = (abs as i128 - reference as i128).abs();
                    assert!(
                        d >= HALF_SPACE as i128,
                        "abs {abs} ref {reference} -> {got}"
                    );
                }
            }
        }
    }

    #[test]
    fn reconstruct_examples_from_doc() {
        assert_eq!(reconstruct_abs(Epoch(5), 3), 5);
        assert_eq!(reconstruct_abs(Epoch(65_535), 65_546), 65_535);
        assert_eq!(reconstruct_abs(Epoch(2), 65_530), 65_538);
        assert_eq!(reconstruct_abs(Epoch(65_530), 65_538), 65_530);
    }

    #[test]
    fn tag_round_trips_through_abs() {
        for abs in [0u64, 1, 65_535, 65_536, 123_456_789] {
            assert_eq!(Epoch::from_abs(abs).raw(), (abs & 0xFFFF) as u16);
        }
    }
}
