//! High-level snapshot access — the paper's "persistent, multiversioned
//! memory system" (§I) as a library surface.
//!
//! [`SnapshotStore`] is a read-only view over the MNM backend for
//! downstream tools (debuggers, replicators, backup agents): list the
//! captured epochs, read any line at any epoch, extract an epoch's
//! incremental delta, and diff two epochs.

use crate::mnm::Mnm;
use nvsim::addr::{LineAddr, Token, VdId};
use nvsim::fastmap::FastHashMap;
use std::fmt;

/// How far back of the recoverable epoch a snapshot can be addressed
/// before the 16-bit OID epoch-sense tags wrap and version provenance
/// becomes ambiguous (paper §IV-B). Requests older than this window are
/// rejected with [`QueryError::Wrapped`] rather than answered with data
/// whose epoch tags may alias a later generation.
pub const EPOCH_SENSE_WINDOW: u64 = 1 << 16;

/// Why a point-in-time read request cannot be served (typed — callers
/// never see a panic for a bad epoch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// Epoch 0 is the pre-history sentinel (`rec-epoch == 0` means
    /// "nothing recoverable"), never an addressable snapshot.
    EpochZero,
    /// The requested epoch lies beyond the recoverable epoch: its
    /// versions may still be unpersisted in the caches, so no consistent
    /// snapshot exists for it yet.
    NotYetRecoverable {
        /// The epoch the caller asked for.
        requested: u64,
        /// The newest epoch that is fully durable (0 = none).
        recoverable: u64,
    },
    /// The epoch was captured but its per-epoch mapping tables were
    /// reclaimed ([`crate::mnm::SnapshotRetention::DropMerged`]) or
    /// compacted away, so it can no longer be served exactly.
    NotRetained {
        /// The epoch whose tables are gone.
        epoch: u64,
    },
    /// The epoch is older than the 16-bit epoch-sense window below the
    /// recoverable epoch: its OID tags have wrapped and can alias a
    /// later generation.
    Wrapped {
        /// The epoch the caller asked for.
        requested: u64,
        /// The recoverable epoch the window is anchored at.
        recoverable: u64,
    },
}

impl QueryError {
    /// The bare variant name (`"EpochZero"`, `"NotYetRecoverable"`, ...),
    /// used by the CLI to print a stable, greppable error class next to
    /// the human message and to pick the documented exit code.
    pub fn name(&self) -> &'static str {
        match self {
            QueryError::EpochZero => "EpochZero",
            QueryError::NotYetRecoverable { .. } => "NotYetRecoverable",
            QueryError::NotRetained { .. } => "NotRetained",
            QueryError::Wrapped { .. } => "Wrapped",
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EpochZero => f.write_str("epoch 0 is not an addressable snapshot"),
            QueryError::NotYetRecoverable {
                requested,
                recoverable,
            } => write!(
                f,
                "epoch {requested} is not yet recoverable (recoverable epoch is {recoverable})"
            ),
            QueryError::NotRetained { epoch } => write!(
                f,
                "epoch {epoch}'s per-epoch tables were reclaimed or compacted"
            ),
            QueryError::Wrapped {
                requested,
                recoverable,
            } => write!(
                f,
                "epoch {requested} is beyond the epoch-sense window ({EPOCH_SENSE_WINDOW} epochs below {recoverable})"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// One line's change between two epochs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineChange {
    /// The line that changed.
    pub line: LineAddr,
    /// Its value at the *from* epoch (None = not yet written).
    pub before: Option<Token>,
    /// Its value at the *to* epoch.
    pub after: Option<Token>,
}

/// Read-only, multi-epoch view over a snapshotted address space.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotStore<'a> {
    mnm: &'a Mnm,
}

impl<'a> SnapshotStore<'a> {
    /// Opens a store over a backend.
    pub fn new(mnm: &'a Mnm) -> Self {
        Self { mnm }
    }

    /// The recoverable epoch (every epoch at or before it is durable).
    pub fn recoverable_epoch(&self) -> u64 {
        self.mnm.rec_epoch()
    }

    /// Captured epochs, ascending, with whether each is individually
    /// readable (per-epoch table retained and not compacted).
    pub fn epochs(&self) -> Vec<(u64, bool)> {
        self.mnm.epochs()
    }

    /// Reads one line as of `epoch` (fall-through semantics, §V-E).
    pub fn read_at(&self, line: LineAddr, epoch: u64) -> Option<Token> {
        self.mnm.time_travel(line, epoch)
    }

    /// Validates that `epoch` names a servable snapshot: non-zero, at or
    /// below the recoverable epoch, inside the epoch-sense window, and
    /// (when the epoch captured versions) with its tables still retained.
    ///
    /// # Errors
    /// Any [`QueryError`] variant; see each for the rejected class.
    pub fn resolve_epoch(&self, epoch: u64) -> Result<u64, QueryError> {
        if epoch == 0 {
            return Err(QueryError::EpochZero);
        }
        let recoverable = self.recoverable_epoch();
        if epoch > recoverable {
            return Err(QueryError::NotYetRecoverable {
                requested: epoch,
                recoverable,
            });
        }
        if recoverable - epoch >= EPOCH_SENSE_WINDOW {
            return Err(QueryError::Wrapped {
                requested: epoch,
                recoverable,
            });
        }
        if self
            .epochs()
            .iter()
            .any(|(e, readable)| *e == epoch && !readable)
        {
            return Err(QueryError::NotRetained { epoch });
        }
        Ok(epoch)
    }

    /// [`SnapshotStore::read_at`] with the epoch validated first: the
    /// serving-layer read path (`nvserve`). `Ok(None)` means the epoch is
    /// servable but the line was never written at or before it.
    ///
    /// # Errors
    /// Any [`QueryError`] variant (see [`SnapshotStore::resolve_epoch`]).
    pub fn read_at_checked(&self, line: LineAddr, epoch: u64) -> Result<Option<Token>, QueryError> {
        self.resolve_epoch(epoch).map(|e| self.read_at(line, e))
    }

    /// The incremental delta captured in exactly `epoch` — what a
    /// replication agent ships (§V-E "Remote Replication").
    ///
    /// Returns `None` when the epoch's tables were reclaimed or
    /// compacted (use [`crate::mnm::SnapshotRetention::KeepAll`]).
    pub fn delta(&self, epoch: u64) -> Option<Vec<(LineAddr, Token)>> {
        self.mnm.epoch_delta(epoch)
    }

    /// Diffs two epochs (`from < to`): every line whose visible value
    /// differs, with both values.
    ///
    /// Returns `None` if any epoch in `(from, to]` is no longer
    /// individually readable.
    pub fn diff(&self, from: u64, to: u64) -> Option<Vec<LineChange>> {
        assert!(from < to, "diff requires from < to");
        // Lines that could have changed = union of the deltas in (from, to].
        let mut candidates: FastHashMap<LineAddr, ()> = FastHashMap::default();
        for (e, _) in self.epochs() {
            if e > from && e <= to {
                for (l, _) in self.delta(e)? {
                    candidates.insert(l, ());
                }
            }
        }
        let mut out: Vec<LineChange> = candidates
            .into_keys()
            .filter_map(|line| {
                let before = self.read_at(line, from);
                let after = self.read_at(line, to);
                (before != after).then_some(LineChange {
                    line,
                    before,
                    after,
                })
            })
            .collect();
        out.sort_by_key(|c| c.line.raw());
        Some(out)
    }

    /// The processor context `vd` dumped at the end of `epoch` (§III-C);
    /// recovery restores these alongside the memory image.
    pub fn context(&self, vd: VdId, epoch: u64) -> Option<Token> {
        self.mnm.context(vd, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnm::{Mnm, OmcConfig};
    use nvsim::nvm::Nvm;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    fn setup() -> (Mnm, Nvm) {
        (
            Mnm::new(
                2,
                2,
                OmcConfig {
                    pool_pages: 32,
                    ..OmcConfig::default()
                },
            ),
            Nvm::new(4, 400, 200, 8, 100_000),
        )
    }

    #[test]
    fn epochs_deltas_and_reads() {
        let (mut m, mut n) = setup();
        m.receive_version(&mut n, 0, line(1), 10, 1);
        m.receive_version(&mut n, 0, line(64), 11, 1);
        m.receive_version(&mut n, 0, line(1), 20, 2);
        m.finish(&mut n, 0, 2);
        let store = SnapshotStore::new(&m);
        assert_eq!(store.recoverable_epoch(), 2);
        assert_eq!(store.epochs(), vec![(1, true), (2, true)]);
        let d1 = store.delta(1).unwrap();
        assert_eq!(d1, vec![(line(1), 10), (line(64), 11)]);
        let d2 = store.delta(2).unwrap();
        assert_eq!(d2, vec![(line(1), 20)]);
        assert_eq!(store.read_at(line(64), 2), Some(11), "fall-through");
    }

    #[test]
    fn diff_reports_exact_changes() {
        let (mut m, mut n) = setup();
        m.receive_version(&mut n, 0, line(1), 10, 1);
        m.receive_version(&mut n, 0, line(64), 11, 1);
        m.receive_version(&mut n, 0, line(1), 20, 2);
        m.receive_version(&mut n, 0, line(128), 30, 3);
        m.finish(&mut n, 0, 3);
        let store = SnapshotStore::new(&m);
        let d = store.diff(1, 3).unwrap();
        assert_eq!(
            d,
            vec![
                LineChange {
                    line: line(1),
                    before: Some(10),
                    after: Some(20)
                },
                LineChange {
                    line: line(128),
                    before: None,
                    after: Some(30)
                },
            ]
        );
        assert!(store.diff(2, 3).unwrap().len() == 1);
    }

    #[test]
    fn contexts_are_retrievable() {
        let (mut m, mut n) = setup();
        m.record_context(VdId(0), 5, 0xAA);
        m.record_context(VdId(1), 5, 0xBB);
        m.finish(&mut n, 0, 5);
        let store = SnapshotStore::new(&m);
        assert_eq!(store.context(VdId(0), 5), Some(0xAA));
        assert_eq!(store.context(VdId(1), 5), Some(0xBB));
        assert_eq!(store.context(VdId(0), 4), None);
    }

    #[test]
    fn checked_reads_accept_exactly_the_recoverable_range() {
        let (mut m, mut n) = setup();
        m.receive_version(&mut n, 0, line(1), 10, 1);
        m.receive_version(&mut n, 0, line(1), 20, 2);
        m.finish(&mut n, 0, 2);
        let store = SnapshotStore::new(&m);
        // Boundary: epoch 0 is the sentinel, never servable.
        assert_eq!(
            store.read_at_checked(line(1), 0),
            Err(QueryError::EpochZero)
        );
        // Boundaries: 1 and rec-epoch are both servable.
        assert_eq!(store.read_at_checked(line(1), 1), Ok(Some(10)));
        assert_eq!(store.read_at_checked(line(1), 2), Ok(Some(20)));
        // Boundary: rec-epoch + 1 is not yet recoverable.
        assert_eq!(
            store.read_at_checked(line(1), 3),
            Err(QueryError::NotYetRecoverable {
                requested: 3,
                recoverable: 2
            })
        );
        // A servable epoch where the line was never written is Ok(None),
        // distinct from every error.
        assert_eq!(store.read_at_checked(line(999), 2), Ok(None));
    }

    #[test]
    fn checked_reads_reject_nothing_recoverable() {
        let (m, _) = setup();
        let store = SnapshotStore::new(&m);
        assert_eq!(
            store.read_at_checked(line(1), 1),
            Err(QueryError::NotYetRecoverable {
                requested: 1,
                recoverable: 0
            })
        );
    }

    #[test]
    fn checked_reads_reject_wrapped_epochs() {
        let (mut m, mut n) = setup();
        let newest = EPOCH_SENSE_WINDOW + 5;
        m.receive_version(&mut n, 0, line(1), 10, 4);
        m.receive_version(&mut n, 0, line(1), 20, newest);
        m.finish(&mut n, 0, newest);
        let store = SnapshotStore::new(&m);
        // Boundary: exactly window-many epochs below rec is wrapped...
        assert_eq!(
            store.resolve_epoch(newest - EPOCH_SENSE_WINDOW),
            Err(QueryError::Wrapped {
                requested: 5,
                recoverable: newest
            })
        );
        // ...one epoch newer is still addressable.
        assert_eq!(store.resolve_epoch(newest - EPOCH_SENSE_WINDOW + 1), Ok(6));
        assert_eq!(store.read_at_checked(line(1), newest), Ok(Some(20)));
    }

    #[test]
    fn checked_reads_reject_reclaimed_epochs() {
        use crate::mnm::SnapshotRetention;
        let mut m = Mnm::new(
            1,
            1,
            OmcConfig {
                pool_pages: 16,
                retention: SnapshotRetention::DropMerged,
                ..OmcConfig::default()
            },
        );
        let mut n = Nvm::new(4, 400, 200, 8, 100_000);
        m.receive_version(&mut n, 0, line(1), 10, 1);
        m.finish(&mut n, 0, 1);
        let store = SnapshotStore::new(&m);
        assert_eq!(
            store.resolve_epoch(1),
            Err(QueryError::NotRetained { epoch: 1 })
        );
        assert_eq!(
            store.read_at_checked(line(1), 1),
            Err(QueryError::NotRetained { epoch: 1 })
        );
    }

    #[test]
    fn query_error_display_is_stable() {
        assert_eq!(
            QueryError::EpochZero.to_string(),
            "epoch 0 is not an addressable snapshot"
        );
        assert_eq!(
            QueryError::NotYetRecoverable {
                requested: 9,
                recoverable: 4
            }
            .to_string(),
            "epoch 9 is not yet recoverable (recoverable epoch is 4)"
        );
        assert_eq!(
            QueryError::NotRetained { epoch: 3 }.to_string(),
            "epoch 3's per-epoch tables were reclaimed or compacted"
        );
    }

    #[test]
    #[should_panic(expected = "from < to")]
    fn diff_rejects_reversed_range() {
        let (m, _) = setup();
        let store = SnapshotStore::new(&m);
        let _ = store.diff(3, 1);
    }
}
