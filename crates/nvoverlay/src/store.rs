//! High-level snapshot access — the paper's "persistent, multiversioned
//! memory system" (§I) as a library surface.
//!
//! [`SnapshotStore`] is a read-only view over the MNM backend for
//! downstream tools (debuggers, replicators, backup agents): list the
//! captured epochs, read any line at any epoch, extract an epoch's
//! incremental delta, and diff two epochs.

use crate::mnm::Mnm;
use nvsim::addr::{LineAddr, Token, VdId};
use nvsim::fastmap::FastHashMap;

/// One line's change between two epochs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineChange {
    /// The line that changed.
    pub line: LineAddr,
    /// Its value at the *from* epoch (None = not yet written).
    pub before: Option<Token>,
    /// Its value at the *to* epoch.
    pub after: Option<Token>,
}

/// Read-only, multi-epoch view over a snapshotted address space.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotStore<'a> {
    mnm: &'a Mnm,
}

impl<'a> SnapshotStore<'a> {
    /// Opens a store over a backend.
    pub fn new(mnm: &'a Mnm) -> Self {
        Self { mnm }
    }

    /// The recoverable epoch (every epoch at or before it is durable).
    pub fn recoverable_epoch(&self) -> u64 {
        self.mnm.rec_epoch()
    }

    /// Captured epochs, ascending, with whether each is individually
    /// readable (per-epoch table retained and not compacted).
    pub fn epochs(&self) -> Vec<(u64, bool)> {
        self.mnm.epochs()
    }

    /// Reads one line as of `epoch` (fall-through semantics, §V-E).
    pub fn read_at(&self, line: LineAddr, epoch: u64) -> Option<Token> {
        self.mnm.time_travel(line, epoch)
    }

    /// The incremental delta captured in exactly `epoch` — what a
    /// replication agent ships (§V-E "Remote Replication").
    ///
    /// Returns `None` when the epoch's tables were reclaimed or
    /// compacted (use [`crate::mnm::SnapshotRetention::KeepAll`]).
    pub fn delta(&self, epoch: u64) -> Option<Vec<(LineAddr, Token)>> {
        self.mnm.epoch_delta(epoch)
    }

    /// Diffs two epochs (`from < to`): every line whose visible value
    /// differs, with both values.
    ///
    /// Returns `None` if any epoch in `(from, to]` is no longer
    /// individually readable.
    pub fn diff(&self, from: u64, to: u64) -> Option<Vec<LineChange>> {
        assert!(from < to, "diff requires from < to");
        // Lines that could have changed = union of the deltas in (from, to].
        let mut candidates: FastHashMap<LineAddr, ()> = FastHashMap::default();
        for (e, _) in self.epochs() {
            if e > from && e <= to {
                for (l, _) in self.delta(e)? {
                    candidates.insert(l, ());
                }
            }
        }
        let mut out: Vec<LineChange> = candidates
            .into_keys()
            .filter_map(|line| {
                let before = self.read_at(line, from);
                let after = self.read_at(line, to);
                (before != after).then_some(LineChange {
                    line,
                    before,
                    after,
                })
            })
            .collect();
        out.sort_by_key(|c| c.line.raw());
        Some(out)
    }

    /// The processor context `vd` dumped at the end of `epoch` (§III-C);
    /// recovery restores these alongside the memory image.
    pub fn context(&self, vd: VdId, epoch: u64) -> Option<Token> {
        self.mnm.context(vd, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnm::{Mnm, OmcConfig};
    use nvsim::nvm::Nvm;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    fn setup() -> (Mnm, Nvm) {
        (
            Mnm::new(
                2,
                2,
                OmcConfig {
                    pool_pages: 32,
                    ..OmcConfig::default()
                },
            ),
            Nvm::new(4, 400, 200, 8, 100_000),
        )
    }

    #[test]
    fn epochs_deltas_and_reads() {
        let (mut m, mut n) = setup();
        m.receive_version(&mut n, 0, line(1), 10, 1);
        m.receive_version(&mut n, 0, line(64), 11, 1);
        m.receive_version(&mut n, 0, line(1), 20, 2);
        m.finish(&mut n, 0, 2);
        let store = SnapshotStore::new(&m);
        assert_eq!(store.recoverable_epoch(), 2);
        assert_eq!(store.epochs(), vec![(1, true), (2, true)]);
        let d1 = store.delta(1).unwrap();
        assert_eq!(d1, vec![(line(1), 10), (line(64), 11)]);
        let d2 = store.delta(2).unwrap();
        assert_eq!(d2, vec![(line(1), 20)]);
        assert_eq!(store.read_at(line(64), 2), Some(11), "fall-through");
    }

    #[test]
    fn diff_reports_exact_changes() {
        let (mut m, mut n) = setup();
        m.receive_version(&mut n, 0, line(1), 10, 1);
        m.receive_version(&mut n, 0, line(64), 11, 1);
        m.receive_version(&mut n, 0, line(1), 20, 2);
        m.receive_version(&mut n, 0, line(128), 30, 3);
        m.finish(&mut n, 0, 3);
        let store = SnapshotStore::new(&m);
        let d = store.diff(1, 3).unwrap();
        assert_eq!(
            d,
            vec![
                LineChange {
                    line: line(1),
                    before: Some(10),
                    after: Some(20)
                },
                LineChange {
                    line: line(128),
                    before: None,
                    after: Some(30)
                },
            ]
        );
        assert!(store.diff(2, 3).unwrap().len() == 1);
    }

    #[test]
    fn contexts_are_retrievable() {
        let (mut m, mut n) = setup();
        m.record_context(VdId(0), 5, 0xAA);
        m.record_context(VdId(1), 5, 0xBB);
        m.finish(&mut n, 0, 5);
        let store = SnapshotStore::new(&m);
        assert_eq!(store.context(VdId(0), 5), Some(0xAA));
        assert_eq!(store.context(VdId(1), 5), Some(0xBB));
        assert_eq!(store.context(VdId(0), 4), None);
    }

    #[test]
    #[should_panic(expected = "from < to")]
    fn diff_rejects_reversed_range() {
        let (m, _) = setup();
        let store = SnapshotStore::new(&m);
        let _ = store.diff(3, 1);
    }
}
