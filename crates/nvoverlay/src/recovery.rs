//! Crash recovery and snapshot retrieval (paper §V-E).
//!
//! After a crash, recovery reads `rec-epoch`, scans the Master Mapping
//! Table(s) and loads every mapped version into its home address,
//! reconstructing the consistent memory image as of the recoverable
//! epoch. Processor contexts dumped at that epoch's boundary complete the
//! restart (contexts are modeled as byte counts; see `system`).

use crate::mnm::Mnm;
use nvsim::addr::{LineAddr, Token};
use nvsim::fastmap::FastHashMap;
use nvsim::nvtrace::{EventKind, TraceScope, Track};
use std::fmt;

/// Why recovery could not produce an image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// No epoch has been fully persisted yet (`rec-epoch` is 0).
    NothingRecoverable,
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::NothingRecoverable => {
                f.write_str("no epoch has been fully persisted yet")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// A reconstructed memory image.
#[derive(Clone, Debug, Default)]
pub struct RecoveredImage {
    epoch: u64,
    lines: FastHashMap<LineAddr, Token>,
}

impl RecoveredImage {
    /// The epoch this image represents.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Reads one line of the image (None = never written as of the
    /// epoch, i.e. still zero-filled).
    pub fn read(&self, line: LineAddr) -> Option<Token> {
        self.lines.get(&line).copied()
    }

    /// Number of mapped lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the image maps nothing.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Iterates `(line, token)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, Token)> + '_ {
        self.lines.iter().map(|(l, t)| (*l, *t))
    }
}

/// Rebuilds the consistent image at `rec-epoch` by scanning the master
/// tables (crash recovery, §V-E).
///
/// # Errors
/// [`RecoveryError::NothingRecoverable`] when no epoch has committed.
pub fn recover(mnm: &Mnm) -> Result<RecoveredImage, RecoveryError> {
    // Recovery runs post-crash with no simulation clock; trace events use
    // the step ordinal as their timestamp to preserve ordering.
    let scope = TraceScope::new(Track::Recovery);
    scope.emit(EventKind::RecoveryStep, 0, 0, mnm.rec_epoch());
    let epoch = mnm.rec_epoch();
    if epoch == 0 {
        return Err(RecoveryError::NothingRecoverable);
    }
    let lines: FastHashMap<LineAddr, Token> = mnm.master_image().collect();
    scope.emit(EventKind::RecoveryStep, 1, 1, lines.len() as u64);
    Ok(RecoveredImage { epoch, lines })
}

/// Rebuilds the image *as of* `epoch` by falling through per-epoch tables
/// (time-travel/debugging reads, §V-E). Requires
/// [`crate::mnm::SnapshotRetention::KeepAll`]; lines whose covering epochs
/// were reclaimed or compacted read as `None`.
pub fn snapshot_at(
    mnm: &Mnm,
    epoch: u64,
    lines: impl IntoIterator<Item = LineAddr>,
) -> RecoveredImage {
    let mut img = RecoveredImage {
        epoch,
        lines: FastHashMap::default(),
    };
    for line in lines {
        if let Some(t) = mnm.time_travel(line, epoch) {
            img.lines.insert(line, t);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnm::{Mnm, OmcConfig};
    use nvsim::nvm::Nvm;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn recover_errors_before_any_commit() {
        let m = Mnm::new(1, 1, OmcConfig::default());
        assert_eq!(recover(&m).unwrap_err(), RecoveryError::NothingRecoverable);
    }

    #[test]
    fn recover_reads_the_master_image() {
        let mut m = Mnm::new(
            2,
            1,
            OmcConfig {
                pool_pages: 16,
                ..OmcConfig::default()
            },
        );
        let mut n = Nvm::new(4, 400, 200, 8, 100_000);
        for i in 0..20 {
            m.receive_version(&mut n, 0, line(i), 900 + i, 1);
        }
        m.finish(&mut n, 0, 1);
        let img = recover(&m).unwrap();
        assert_eq!(img.epoch(), 1);
        assert_eq!(img.len(), 20);
        assert_eq!(img.read(line(7)), Some(907));
        assert_eq!(img.read(line(99)), None);
    }

    #[test]
    fn snapshot_at_reconstructs_old_epochs() {
        let mut m = Mnm::new(
            1,
            1,
            OmcConfig {
                pool_pages: 16,
                ..OmcConfig::default()
            },
        );
        let mut n = Nvm::new(4, 400, 200, 8, 100_000);
        m.receive_version(&mut n, 0, line(1), 10, 1);
        m.receive_version(&mut n, 0, line(2), 20, 1);
        m.receive_version(&mut n, 0, line(1), 11, 2);
        m.finish(&mut n, 0, 2);
        let at1 = snapshot_at(&m, 1, [line(1), line(2), line(3)]);
        assert_eq!(at1.read(line(1)), Some(10));
        assert_eq!(at1.read(line(2)), Some(20));
        assert_eq!(at1.read(line(3)), None);
        let at2 = snapshot_at(&m, 2, [line(1), line(2)]);
        assert_eq!(at2.read(line(1)), Some(11));
        assert_eq!(at2.read(line(2)), Some(20), "fall-through to epoch 1");
        assert_eq!(at2.iter().count(), 2);
    }
}
