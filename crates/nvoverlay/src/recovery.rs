//! Crash recovery and snapshot retrieval (paper §V-E).
//!
//! After a crash, recovery reads `rec-epoch`, scans the Master Mapping
//! Table(s) and loads every mapped version into its home address,
//! reconstructing the consistent memory image as of the recoverable
//! epoch. Processor contexts dumped at that epoch's boundary complete the
//! restart (contexts are modeled as byte counts; see `system`).

use crate::mnm::{table, Mnm};
use nvsim::addr::{LineAddr, Token};
use nvsim::fastmap::FastHashMap;
use nvsim::nvtrace::{EventKind, TraceScope, Track};
use std::fmt;

/// Why recovery could not produce an image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// No epoch has been fully persisted yet (`rec-epoch` is 0).
    NothingRecoverable,
    /// The `rec-epoch` root pointer was torn by the crash: the 8-byte
    /// cell fails its integrity check. Recovery must fall back to the
    /// previous root (the paper's atomic pointer write means at most one
    /// of the ping-pong cells can be torn).
    TornMasterRoot {
        /// The epoch the torn cell would have named.
        epoch: u64,
    },
    /// A Master Mapping Table entry fails its parity check — the word
    /// was corrupted in place (e.g. a stray bit flip in the NVM array).
    CorruptMapping {
        /// The line whose mapping word is corrupt.
        line: LineAddr,
        /// The raw 8-byte word as read back.
        raw: u64,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::NothingRecoverable => {
                f.write_str("no epoch has been fully persisted yet")
            }
            RecoveryError::TornMasterRoot { epoch } => {
                write!(f, "rec-epoch root cell (epoch {epoch}) is torn")
            }
            RecoveryError::CorruptMapping { line, raw } => {
                write!(
                    f,
                    "master mapping entry for line {:#x} is corrupt (word {raw:#018x})",
                    line.raw()
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// The durable `rec-epoch` root cell as read back after a crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RootCell {
    /// The recoverable epoch the cell names (0 = never written).
    pub epoch: u64,
    /// Whether the cell failed its integrity check (torn write).
    pub torn: bool,
}

/// What survives on NVM after a crash, as recovery sees it. The live
/// [`Mnm`] implements this (clean-shutdown recovery, the existing
/// [`recover`] path); the `nvchaos` crate implements it over a durable
/// state reconstructed from a crash cut of the NVM write journal.
pub trait DurableState {
    /// The `rec-epoch` root pointer.
    fn root(&self) -> RootCell;

    /// Every persisted Master Mapping Table entry as its raw 8-byte word
    /// (see [`table::encode_loc`]), for integrity checking.
    fn mapping_words(&self) -> Box<dyn Iterator<Item = (LineAddr, u64)> + '_>;

    /// Every line with any durable version.
    fn lines(&self) -> Box<dyn Iterator<Item = LineAddr> + '_>;

    /// The durable version of `line` as of `epoch` (fall-through to the
    /// newest version at or below it), read from the overlay data pages'
    /// epoch-tagged slots.
    fn version_at(&self, line: LineAddr, epoch: u64) -> Option<Token>;
}

impl DurableState for Mnm {
    fn root(&self) -> RootCell {
        RootCell {
            epoch: self.rec_epoch(),
            torn: false,
        }
    }

    fn mapping_words(&self) -> Box<dyn Iterator<Item = (LineAddr, u64)> + '_> {
        Box::new(self.omcs().iter().flat_map(|o| {
            o.master()
                .tree()
                .iter()
                .map(|(l, loc)| (l, table::encode_loc(loc)))
        }))
    }

    fn lines(&self) -> Box<dyn Iterator<Item = LineAddr> + '_> {
        Box::new(self.master_image().map(|(l, _)| l))
    }

    fn version_at(&self, line: LineAddr, _epoch: u64) -> Option<Token> {
        // The live master tables already map exactly the rec-epoch image.
        self.read_master(line)
    }
}

/// A reconstructed memory image.
#[derive(Clone, Debug, Default)]
pub struct RecoveredImage {
    epoch: u64,
    lines: FastHashMap<LineAddr, Token>,
}

impl RecoveredImage {
    /// The epoch this image represents.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Reads one line of the image (None = never written as of the
    /// epoch, i.e. still zero-filled).
    pub fn read(&self, line: LineAddr) -> Option<Token> {
        self.lines.get(&line).copied()
    }

    /// Number of mapped lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the image maps nothing.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Iterates `(line, token)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, Token)> + '_ {
        self.lines.iter().map(|(l, t)| (*l, *t))
    }
}

/// Rebuilds the consistent image at `rec-epoch` by scanning the master
/// tables (crash recovery, §V-E).
///
/// # Errors
/// [`RecoveryError::NothingRecoverable`] when no epoch has committed.
pub fn recover(mnm: &Mnm) -> Result<RecoveredImage, RecoveryError> {
    recover_durable(mnm)
}

/// Rebuilds the consistent image from any [`DurableState`] — the general
/// §V-E procedure: read the `rec-epoch` root, validate every master
/// mapping word, then load each mapped line's version as of the root
/// epoch.
///
/// # Errors
/// * [`RecoveryError::TornMasterRoot`] when the root cell is torn;
/// * [`RecoveryError::NothingRecoverable`] when no epoch has committed;
/// * [`RecoveryError::CorruptMapping`] when a mapping word fails parity.
pub fn recover_durable<S: DurableState + ?Sized>(
    state: &S,
) -> Result<RecoveredImage, RecoveryError> {
    // Recovery runs post-crash with no simulation clock; trace events use
    // the step ordinal as their timestamp to preserve ordering.
    let scope = TraceScope::new(Track::Recovery);
    let root = state.root();
    scope.emit(EventKind::RecoveryStep, 0, 0, root.epoch);
    if root.torn {
        return Err(RecoveryError::TornMasterRoot { epoch: root.epoch });
    }
    if root.epoch == 0 {
        return Err(RecoveryError::NothingRecoverable);
    }
    for (line, raw) in state.mapping_words() {
        if table::decode_loc(raw).is_none() {
            return Err(RecoveryError::CorruptMapping { line, raw });
        }
    }
    let lines: FastHashMap<LineAddr, Token> = state
        .lines()
        .filter_map(|l| state.version_at(l, root.epoch).map(|t| (l, t)))
        .collect();
    scope.emit(EventKind::RecoveryStep, 1, 1, lines.len() as u64);
    Ok(RecoveredImage {
        epoch: root.epoch,
        lines,
    })
}

/// Rebuilds the image *as of* `epoch` by falling through per-epoch tables
/// (time-travel/debugging reads, §V-E). Requires
/// [`crate::mnm::SnapshotRetention::KeepAll`]; lines whose covering epochs
/// were reclaimed or compacted read as `None`.
pub fn snapshot_at(
    mnm: &Mnm,
    epoch: u64,
    lines: impl IntoIterator<Item = LineAddr>,
) -> RecoveredImage {
    let mut img = RecoveredImage {
        epoch,
        lines: FastHashMap::default(),
    };
    for line in lines {
        if let Some(t) = mnm.time_travel(line, epoch) {
            img.lines.insert(line, t);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnm::{Mnm, OmcConfig};
    use nvsim::nvm::Nvm;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn recover_errors_before_any_commit() {
        let m = Mnm::new(1, 1, OmcConfig::default());
        assert_eq!(recover(&m).unwrap_err(), RecoveryError::NothingRecoverable);
    }

    #[test]
    fn recover_reads_the_master_image() {
        let mut m = Mnm::new(
            2,
            1,
            OmcConfig {
                pool_pages: 16,
                ..OmcConfig::default()
            },
        );
        let mut n = Nvm::new(4, 400, 200, 8, 100_000);
        for i in 0..20 {
            m.receive_version(&mut n, 0, line(i), 900 + i, 1);
        }
        m.finish(&mut n, 0, 1);
        let img = recover(&m).unwrap();
        assert_eq!(img.epoch(), 1);
        assert_eq!(img.len(), 20);
        assert_eq!(img.read(line(7)), Some(907));
        assert_eq!(img.read(line(99)), None);
    }

    /// A hand-built durable state for exercising the error paths.
    struct FakeDurable {
        root: RootCell,
        words: Vec<(LineAddr, u64)>,
        versions: Vec<(LineAddr, u64, Token)>,
    }

    impl DurableState for FakeDurable {
        fn root(&self) -> RootCell {
            self.root
        }
        fn mapping_words(&self) -> Box<dyn Iterator<Item = (LineAddr, u64)> + '_> {
            Box::new(self.words.iter().copied())
        }
        fn lines(&self) -> Box<dyn Iterator<Item = LineAddr> + '_> {
            Box::new(self.versions.iter().map(|(l, _, _)| *l))
        }
        fn version_at(&self, line: LineAddr, epoch: u64) -> Option<Token> {
            self.versions
                .iter()
                .filter(|(l, e, _)| *l == line && *e <= epoch)
                .max_by_key(|(_, e, _)| *e)
                .map(|(_, _, t)| *t)
        }
    }

    #[test]
    fn torn_root_is_reported() {
        let s = FakeDurable {
            root: RootCell {
                epoch: 4,
                torn: true,
            },
            words: vec![],
            versions: vec![],
        };
        let err = recover_durable(&s).unwrap_err();
        assert_eq!(err, RecoveryError::TornMasterRoot { epoch: 4 });
        assert_eq!(err.to_string(), "rec-epoch root cell (epoch 4) is torn");
    }

    #[test]
    fn corrupt_mapping_word_is_detected() {
        use crate::mnm::{table::encode_loc, NvmLoc};
        let good = encode_loc(NvmLoc { page: 3, slot: 7 });
        let s = FakeDurable {
            root: RootCell {
                epoch: 1,
                torn: false,
            },
            words: vec![(line(1), good), (line(2), good ^ (1 << 20))],
            versions: vec![(line(1), 1, 10), (line(2), 1, 20)],
        };
        let err = recover_durable(&s).unwrap_err();
        assert_eq!(
            err,
            RecoveryError::CorruptMapping {
                line: line(2),
                raw: good ^ (1 << 20)
            }
        );
        assert!(err.to_string().contains("corrupt"), "{err}");
    }

    #[test]
    fn recover_durable_falls_through_to_the_root_epoch() {
        let s = FakeDurable {
            root: RootCell {
                epoch: 2,
                torn: false,
            },
            words: vec![],
            versions: vec![
                (line(1), 1, 10),
                (line(1), 3, 30), // beyond the root: not recovered
                (line(2), 2, 20),
            ],
        };
        let img = recover_durable(&s).unwrap();
        assert_eq!(img.epoch(), 2);
        assert_eq!(img.read(line(1)), Some(10), "epoch 3 version excluded");
        assert_eq!(img.read(line(2)), Some(20));
    }

    #[test]
    fn error_display_is_stable() {
        assert_eq!(
            RecoveryError::NothingRecoverable.to_string(),
            "no epoch has been fully persisted yet"
        );
        let e = RecoveryError::CorruptMapping {
            line: line(0x40),
            raw: 0x8000_0000_0000_0001,
        };
        assert_eq!(
            e.to_string(),
            "master mapping entry for line 0x40 is corrupt (word 0x8000000000000001)"
        );
    }

    #[test]
    fn snapshot_at_reconstructs_old_epochs() {
        let mut m = Mnm::new(
            1,
            1,
            OmcConfig {
                pool_pages: 16,
                ..OmcConfig::default()
            },
        );
        let mut n = Nvm::new(4, 400, 200, 8, 100_000);
        m.receive_version(&mut n, 0, line(1), 10, 1);
        m.receive_version(&mut n, 0, line(2), 20, 1);
        m.receive_version(&mut n, 0, line(1), 11, 2);
        m.finish(&mut n, 0, 2);
        let at1 = snapshot_at(&m, 1, [line(1), line(2), line(3)]);
        assert_eq!(at1.read(line(1)), Some(10));
        assert_eq!(at1.read(line(2)), Some(20));
        assert_eq!(at1.read(line(3)), None);
        let at2 = snapshot_at(&m, 2, [line(1), line(2)]);
        assert_eq!(at2.read(line(1)), Some(11));
        assert_eq!(at2.read(line(2)), Some(20), "fall-through to epoch 1");
        assert_eq!(at2.iter().count(), 2);
    }
}
