//! # nvoverlay — NVOverlay (ISCA 2021) in Rust
//!
//! A from-scratch reproduction of *NVOverlay: Enabling Efficient and
//! Scalable High-Frequency Snapshotting to NVM* (Wang et al., ISCA 2021).
//!
//! NVOverlay captures persistent snapshots of a process's full physical
//! address space to NVM hundreds of times per second with two mechanisms:
//!
//! * **Coherent Snapshot Tracking** ([`cst`]) — a version-tagged cache
//!   hierarchy with per-Versioned-Domain epochs forming a Lamport clock,
//!   tracking exactly what changed since the last snapshot without
//!   persistence barriers and without global epoch synchronization.
//! * **Multi-snapshot NVM Mapping** ([`mnm`]) — an Overlay Memory
//!   Controller that shadow-maps evicted versions into per-epoch NVM
//!   overlay pages, merges them into a persistent Master Mapping Table,
//!   and supports random access to any retained snapshot — with no
//!   logging, hence no log write amplification.
//!
//! [`system::NvOverlaySystem`] wires the two together behind `nvsim`'s
//! [`nvsim::memsys::MemorySystem`] trait; [`recovery`] implements crash
//! recovery and time-travel reads.
//!
//! ## Example
//!
//! ```
//! use nvoverlay::system::NvOverlaySystem;
//! use nvsim::{SimConfig, Runner};
//! use nvsim::trace::TraceBuilder;
//! use nvsim::addr::{Addr, ThreadId};
//!
//! let cfg = SimConfig::builder()
//!     .cores(4, 2)
//!     .epoch_size_stores(100)
//!     .build()
//!     .unwrap();
//! let mut sys = NvOverlaySystem::new(&cfg);
//! let mut tb = TraceBuilder::new(4);
//! for i in 0..1000u64 {
//!     tb.store(ThreadId((i % 4) as u16), Addr::new((i % 64) * 64));
//! }
//! let trace = tb.build();
//! let report = Runner::new().run(&mut sys, &trace);
//! assert!(report.cycles > 0);
//! // Crash recovery reproduces the golden memory image.
//! let img = sys.recover().expect("recoverable");
//! for (line, token) in &report.golden_image {
//!     assert_eq!(img.read(*line), Some(*token));
//! }
//! ```

#![warn(missing_docs)]

pub mod cst;
pub mod epoch;
pub mod mnm;
pub mod recovery;
pub mod store;
pub mod system;

pub use epoch::Epoch;
pub use store::{QueryError, SnapshotStore, EPOCH_SENSE_WINDOW};
pub use system::NvOverlaySystem;
