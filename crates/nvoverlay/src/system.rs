//! The complete NVOverlay machine: CST frontend + MNM backend behind the
//! [`MemorySystem`] trait.
//!
//! The system owns the versioned hierarchy, the OMC array and the NVM
//! device. After every access it drains the frontend's events:
//!
//! * versions leaving a VD are handed to the MNM (async NVM writes whose
//!   *backpressure* — not completion — stalls the triggering access);
//! * epoch advances dump processor contexts and trigger the VD's tag
//!   walker; the walker's `min-ver` report drives the distributed
//!   recoverable-epoch pipeline.

use crate::cst::{AdvanceCause, CstConfig, CstEvent, VersionOut, VersionedHierarchy};
use crate::mnm::{Mnm, OmcConfig};
use crate::recovery::{self, RecoveredImage, RecoveryError};
use nvsim::addr::{Addr, CoreId, LineAddr, Token, VdId};
use nvsim::clock::Cycle;
use nvsim::config::SimConfig;
use nvsim::fault::PersistPayload;
use nvsim::memsys::{AccessOutcome, MemOp, MemorySystem};
use nvsim::nvm::Nvm;
use nvsim::nvtrace::{EventKind, TraceScope, Track};
use nvsim::stats::{EvictReason, NvmWriteKind, SystemStats};

/// Builder-style options for [`NvOverlaySystem`].
#[derive(Clone, Debug)]
pub struct NvOverlayOptions {
    /// CST knobs (epoch advance stall, context size, initial epoch).
    pub cst: CstConfig,
    /// OMC knobs (pool size, retention, buffer).
    pub omc: OmcConfig,
    /// Number of OMCs (address-partitioned, §V-F).
    pub omc_count: usize,
    /// Run the tag walker on every epoch advance (the paper's policy:
    /// "NVOverlay initiates tag walk after an epoch completes").
    pub walk_on_epoch_advance: bool,
}

impl Default for NvOverlayOptions {
    fn default() -> Self {
        Self {
            cst: CstConfig::default(),
            omc: OmcConfig::default(),
            omc_count: 2,
            walk_on_epoch_advance: true,
        }
    }
}

/// The full NVOverlay system under simulation.
pub struct NvOverlaySystem {
    hier: VersionedHierarchy,
    mnm: Mnm,
    nvm: Nvm,
    opts: NvOverlayOptions,
    stats: SystemStats,
    /// Recycled event buffer for the per-access drain (swapped with the
    /// hierarchy's buffer instead of allocating each access).
    ev_scratch: Vec<CstEvent>,
    /// Epoch advances forced by shard-barrier Lamport sync
    /// (`raise_epoch_floor`), for the profiler's epoch-sync attribution.
    /// Deterministic: the barrier schedule depends only on the plan.
    sync_epoch_raises: u64,
    /// Stall cycles charged by those forced advances.
    sync_stall_cycles: Cycle,
}

impl NvOverlaySystem {
    /// Creates a system with default options.
    pub fn new(cfg: &SimConfig) -> Self {
        Self::with_options(cfg, NvOverlayOptions::default())
    }

    /// [`NvOverlaySystem::new`] over a shared configuration handle.
    pub fn new_shared(cfg: std::sync::Arc<SimConfig>) -> Self {
        Self::with_options_shared(cfg, NvOverlayOptions::default())
    }

    /// Creates a system with explicit options.
    ///
    /// # Panics
    /// Panics if `cfg` does not validate or `omc_count` is zero.
    pub fn with_options(cfg: &SimConfig, opts: NvOverlayOptions) -> Self {
        Self::with_options_shared(std::sync::Arc::new(cfg.clone()), opts)
    }

    /// [`NvOverlaySystem::with_options`] over a shared configuration —
    /// matrix sweeps hand every cell the same `Arc` instead of cloning.
    ///
    /// # Panics
    /// Panics if `cfg` does not validate or `omc_count` is zero.
    pub fn with_options_shared(cfg: std::sync::Arc<SimConfig>, opts: NvOverlayOptions) -> Self {
        let mnm = Mnm::new(opts.omc_count, cfg.vd_count() as usize, opts.omc.clone());
        let nvm = Nvm::new(
            cfg.nvm_banks,
            cfg.nvm_write_latency,
            cfg.nvm_read_latency,
            cfg.nvm_queue_depth,
            cfg.bandwidth_bucket_cycles,
        );
        let bucket = cfg.bandwidth_bucket_cycles;
        let hier = VersionedHierarchy::new_shared(cfg, opts.cst.clone());
        Self {
            hier,
            mnm,
            nvm,
            opts,
            stats: SystemStats::new(bucket),
            ev_scratch: Vec::new(),
            sync_epoch_raises: 0,
            sync_stall_cycles: 0,
        }
    }

    /// Convenience: a system with the battery-backed OMC buffer enabled
    /// (geometry mirroring the LLC, as in the paper's Fig 16 experiment).
    pub fn with_omc_buffer(cfg: &SimConfig) -> Self {
        Self::with_omc_buffer_shared(std::sync::Arc::new(cfg.clone()))
    }

    /// [`NvOverlaySystem::with_omc_buffer`] over a shared configuration
    /// handle.
    pub fn with_omc_buffer_shared(cfg: std::sync::Arc<SimConfig>) -> Self {
        let sets = cfg.llc.sets();
        let opts = NvOverlayOptions {
            omc: OmcConfig {
                buffer: Some((sets, cfg.llc.ways)),
                ..OmcConfig::default()
            },
            ..NvOverlayOptions::default()
        };
        Self::with_options_shared(cfg, opts)
    }

    /// The versioned hierarchy (inspection).
    pub fn hierarchy(&self) -> &VersionedHierarchy {
        &self.hier
    }

    /// The MNM backend (inspection).
    pub fn mnm(&self) -> &Mnm {
        &self.mnm
    }

    /// The NVM device (byte accounting, bandwidth series).
    pub fn nvm(&self) -> &Nvm {
        &self.nvm
    }

    /// Mutable device access — used by the chaos harness to attach and
    /// harvest the persistence-order fault plane around a run.
    pub fn nvm_mut(&mut self) -> &mut Nvm {
        &mut self.nvm
    }

    /// The persisted recoverable epoch.
    pub fn rec_epoch(&self) -> u64 {
        self.mnm.rec_epoch()
    }

    /// Crash recovery: rebuilds the image at `rec-epoch` (§V-E).
    ///
    /// # Errors
    /// [`RecoveryError::NothingRecoverable`] when no epoch has committed.
    pub fn recover(&self) -> Result<RecoveredImage, RecoveryError> {
        recovery::recover(&self.mnm)
    }

    /// Time-travel read of `line` at `epoch` (§V-E).
    pub fn time_travel(&self, line: LineAddr, epoch: u64) -> Option<Token> {
        self.mnm.time_travel(line, epoch)
    }

    /// A read-only multi-epoch view for tools (deltas, diffs, contexts).
    pub fn snapshots(&self) -> crate::store::SnapshotStore<'_> {
        crate::store::SnapshotStore::new(&self.mnm)
    }

    /// Handles a version arriving at the backend; returns backpressure
    /// stall for the in-flight access.
    fn persist_version(&mut self, v: VersionOut, now: Cycle) -> Cycle {
        self.stats.evictions.record(v.reason);
        if v.reason == EvictReason::StoreEviction {
            TraceScope::new(Track::System).emit(
                EventKind::StoreEviction,
                now,
                v.line.raw(),
                v.abs_epoch,
            );
        }
        let stall = self
            .mnm
            .receive_version(&mut self.nvm, now, v.line, v.token, v.abs_epoch);
        if stall > 0 {
            TraceScope::new(Track::System).emit(
                EventKind::OmcBackpressure,
                now,
                stall,
                v.line.raw(),
            );
        }
        stall
    }

    /// Handles an epoch advance: context dumps + tag walk + min-ver
    /// report. Background work — no stall beyond what the hierarchy
    /// already charged.
    fn on_epoch_advance(&mut self, vd: VdId, ended_epoch: u64, now: Cycle) {
        self.stats.epochs_completed += 1;
        TraceScope::new(Track::Vd(vd.0)).emit(
            EventKind::EpochAdvance,
            now,
            ended_epoch,
            ended_epoch + 1,
        );
        let cores = self.hier.config().cores_per_vd as u64;
        let bytes = self.hier.cst_config().context_bytes_per_core;
        let blob = ((vd.0 as u64) << 48) | ended_epoch;
        for c in 0..cores {
            self.nvm
                .write(now, vd.0 as u64 * 64 + c, NvmWriteKind::Context, bytes);
            self.nvm.annotate_last(PersistPayload::Context {
                vd: vd.0,
                epoch: ended_epoch,
                blob,
            });
        }
        // The context blob is modeled as a deterministic token derived
        // from (vd, epoch); recovery checks it is present (§V-E).
        self.mnm.record_context(vd, ended_epoch, blob);
        if self.opts.walk_on_epoch_advance {
            let walker = TraceScope::new(Track::Vd(vd.0));
            walker.emit(EventKind::TagWalkStart, now, ended_epoch, 0);
            let (versions, min_ver) = self.hier.tag_walk(vd);
            walker.emit(EventKind::TagWalkEnd, now, min_ver, versions.len() as u64);
            for v in versions {
                self.stats.evictions.record(v.reason);
                self.mnm
                    .receive_version(&mut self.nvm, now, v.line, v.token, v.abs_epoch);
            }
            self.mnm.report_min_ver(&mut self.nvm, now, vd, min_ver);
        }
        // O(cache) invariant sweep — debug/`strict-invariants` builds only.
        self.hier.debug_validate();
    }

    /// Drains frontend events; returns extra access-path stall.
    ///
    /// Versions are delivered to the OMC *before* any epoch-advance
    /// handling: an access can evict a version and trigger an epoch
    /// advance at once, and the min-ver report that follows the walk must
    /// not overtake an in-flight version on its way to the OMC (the NoC
    /// delivers both on the same ordered channel; processing them out of
    /// order would let `rec-epoch` commit an epoch whose last version is
    /// still in flight).
    fn drain_events(&mut self, now: Cycle) -> Cycle {
        let mut stall = 0;
        // Swap the hierarchy's event buffer with a recycled scratch vector
        // so the per-access drain allocates nothing in steady state.
        let mut events = std::mem::take(&mut self.ev_scratch);
        events.clear();
        self.hier.swap_events(&mut events);
        for e in &events {
            if let CstEvent::Version(v) = e {
                stall = stall.max(self.persist_version(*v, now));
            }
        }
        for e in &events {
            match *e {
                CstEvent::DirtyTransfer { vd, abs_epoch } => {
                    self.mnm.clamp_min_ver(vd, abs_epoch);
                }
                CstEvent::EpochAdvanced { vd, from_abs, .. } => {
                    self.on_epoch_advance(vd, from_abs, now);
                }
                CstEvent::Version(_) => {}
            }
        }
        self.ev_scratch = events;
        stall
    }

    /// Copies device-side counters into the stats block.
    fn sync_stats(&mut self) {
        self.stats.nvm = self.nvm.stats().clone();
        self.stats.nvm_bandwidth = self.nvm.bandwidth().clone();
        self.stats.access = self.hier.counters().clone();
        self.stats.omc_buffer_hits = self.mnm.buffer_hits();
        self.stats.omc_buffer_misses = self.mnm.buffer_misses();
    }
}

impl MemorySystem for NvOverlaySystem {
    fn name(&self) -> &'static str {
        "NVOverlay"
    }

    fn access(
        &mut self,
        core: CoreId,
        op: MemOp,
        addr: Addr,
        token: Token,
        now: Cycle,
    ) -> AccessOutcome {
        let (lat, hier_stall, value) = self.hier.access(core, op, addr, token);
        let bp = self.drain_events(now + lat);
        let persist_stall = hier_stall + bp;
        self.stats.persist_stall_cycles += persist_stall;
        AccessOutcome {
            latency: lat + bp,
            persist_stall,
            value,
        }
    }

    fn epoch_mark(&mut self, core: CoreId, now: Cycle) -> Cycle {
        let vd = self.hier.vd_of(core);
        let stall = self
            .hier
            .advance_epoch_explicit(vd, AdvanceCause::ExplicitMark);
        let bp = self.drain_events(now + stall);
        self.stats.persist_stall_cycles += stall + bp;
        stall + bp
    }

    fn import_line(&mut self, line: LineAddr, token: Token) -> bool {
        self.hier.import_line(line, token)
    }

    fn import_lines(
        &mut self,
        entries: &[nvsim::shard::ExchangeEntry],
        island: u16,
        golden: &mut nvsim::fastmap::FastMap<LineAddr, Token>,
    ) -> u64 {
        self.hier.import_lines(entries, island, golden)
    }

    fn epoch_floor(&self) -> u64 {
        (0..self.hier.config().vd_count())
            .map(|v| self.hier.epoch_abs(VdId(v)))
            .max()
            .unwrap_or(0)
    }

    fn raise_epoch_floor(&mut self, floor: u64, now: Cycle) -> Cycle {
        // Lamport sync at a shard barrier: every VD whose epoch is
        // behind the global floor advances with `CoherenceSync` — the
        // same cause a cross-VD coherence hit would have charged — and
        // the versions each advance flushes drain through the MNM
        // exactly as mid-run advances do.
        let mut stall = 0;
        for v in 0..self.hier.config().vd_count() {
            let vd = VdId(v);
            while self.hier.epoch_abs(vd) < floor {
                stall += self
                    .hier
                    .advance_epoch_explicit(vd, AdvanceCause::CoherenceSync);
                stall += self.drain_events(now + stall);
                self.sync_epoch_raises += 1;
            }
        }
        self.stats.persist_stall_cycles += stall;
        self.sync_stall_cycles += stall;
        stall
    }

    fn finish(&mut self, now: Cycle) -> Cycle {
        let versions = self.hier.drain();
        for v in versions {
            self.stats.evictions.record(v.reason);
            self.mnm
                .receive_version(&mut self.nvm, now, v.line, v.token, v.abs_epoch);
        }
        // Handle the EpochAdvanced events the drain produced (contexts).
        let events = self.hier.take_events();
        let mut final_epoch = 0;
        for e in events {
            match e {
                CstEvent::Version(v) => {
                    self.stats.evictions.record(v.reason);
                    self.mnm
                        .receive_version(&mut self.nvm, now, v.line, v.token, v.abs_epoch);
                }
                CstEvent::EpochAdvanced {
                    vd,
                    from_abs,
                    to_abs,
                    ..
                } => {
                    self.stats.epochs_completed += 1;
                    TraceScope::new(Track::Vd(vd.0)).emit(
                        EventKind::EpochAdvance,
                        now,
                        from_abs,
                        to_abs,
                    );
                    let cores = self.hier.config().cores_per_vd as u64;
                    let bytes = self.hier.cst_config().context_bytes_per_core;
                    let blob = ((vd.0 as u64) << 48) | from_abs;
                    for c in 0..cores {
                        self.nvm
                            .write(now, vd.0 as u64 * 64 + c, NvmWriteKind::Context, bytes);
                        self.nvm.annotate_last(PersistPayload::Context {
                            vd: vd.0,
                            epoch: from_abs,
                            blob,
                        });
                    }
                    self.mnm.record_context(vd, from_abs, blob);
                    final_epoch = final_epoch.max(to_abs);
                }
                CstEvent::DirtyTransfer { vd, abs_epoch } => {
                    self.mnm.clamp_min_ver(vd, abs_epoch);
                }
            }
        }
        // Everything before the post-drain epochs is persistent.
        let rec_target = final_epoch.saturating_sub(1).max(self.mnm.rec_epoch());
        self.mnm.finish(&mut self.nvm, now, rec_target);
        self.sync_stats();
        self.nvm.persist_horizon().max(now)
    }

    fn stats(&self) -> &SystemStats {
        &self.stats
    }

    fn metrics(&self) -> nvsim::metrics::Registry {
        let mut reg = nvsim::metrics::Registry::new();
        self.stats.metrics_into(&mut reg, "sys");
        self.hier.metrics_into(&mut reg, "cst");
        self.mnm.metrics_into(&mut reg, "mnm");
        self.nvm.metrics_into(&mut reg, "nvm");
        // Shard-barrier epoch-sync attribution (0 on serial runs; under
        // sharding the values depend only on the plan, so they stay
        // byte-identical across worker counts).
        reg.set_counter("sync.epoch_raises", self.sync_epoch_raises);
        reg.set_counter("sync.stall_cycles", self.sync_stall_cycles);
        reg
    }
}

impl std::fmt::Debug for NvOverlaySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvOverlaySystem")
            .field("hier", &self.hier)
            .field("mnm", &self.mnm)
            .field("rec_epoch", &self.mnm.rec_epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim::addr::ThreadId;
    use nvsim::memsys::Runner;
    use nvsim::trace::TraceBuilder;

    fn small_cfg(epoch_stores: u64) -> SimConfig {
        SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(epoch_stores)
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_recovery_matches_golden_image() {
        let cfg = small_cfg(50);
        let mut sys = NvOverlaySystem::new(&cfg);
        let mut tb = TraceBuilder::new(4);
        for i in 0..2000u64 {
            let t = ThreadId((i % 4) as u16);
            if i % 4 == 0 {
                tb.load(t, Addr::new((i % 80) * 64));
            } else {
                tb.store(t, Addr::new(((i * 13) % 200) * 64));
            }
        }
        let trace = tb.build();
        let report = Runner::new().run(&mut sys, &trace);
        let img = sys.recover().expect("recoverable after finish");
        for (line, token) in &report.golden_image {
            assert_eq!(img.read(*line), Some(*token), "line {line}");
        }
        assert_eq!(img.len(), report.golden_image.len());
    }

    #[test]
    fn rec_epoch_advances_during_the_run() {
        let cfg = small_cfg(20);
        let mut sys = NvOverlaySystem::new(&cfg);
        let mut tb = TraceBuilder::new(4);
        for i in 0..4000u64 {
            tb.store(ThreadId((i % 4) as u16), Addr::new((i % 50) * 64));
        }
        let trace = tb.build();
        // Probe before finish by running manually through the Runner and
        // checking afterwards that epochs committed during execution.
        let _ = Runner::new().run(&mut sys, &trace);
        assert!(
            sys.stats().epochs_completed > 10,
            "epochs advanced: {}",
            sys.stats().epochs_completed
        );
        assert!(sys.rec_epoch() > 0);
    }

    #[test]
    fn nvm_accounting_has_data_metadata_and_context() {
        let cfg = small_cfg(25);
        let mut sys = NvOverlaySystem::new(&cfg);
        let mut tb = TraceBuilder::new(4);
        for i in 0..1000u64 {
            tb.store(ThreadId((i % 4) as u16), Addr::new((i % 100) * 64));
        }
        let trace = tb.build();
        let _ = Runner::new().run(&mut sys, &trace);
        let s = sys.stats();
        assert!(s.nvm.bytes(NvmWriteKind::Data) > 0);
        assert!(s.nvm.bytes(NvmWriteKind::MapMetadata) > 0);
        assert!(s.nvm.bytes(NvmWriteKind::Context) > 0);
        assert_eq!(s.nvm.bytes(NvmWriteKind::Log), 0, "NVOverlay never logs");
    }

    #[test]
    fn time_travel_reads_historic_epochs() {
        let cfg = small_cfg(1_000_000);
        let mut sys = NvOverlaySystem::new(&cfg);
        // Epoch 1: write line 0 = A. Mark. Epoch 2: line 0 = B. Finish.
        let mut tb = TraceBuilder::new(4);
        let a = tb.store(ThreadId(0), Addr::new(0));
        tb.epoch_mark(ThreadId(0));
        let b = tb.store(ThreadId(0), Addr::new(0));
        let trace = tb.build();
        let _ = Runner::new().run(&mut sys, &trace);
        assert_eq!(sys.time_travel(LineAddr::new(0), 1), Some(a));
        let later = sys.time_travel(LineAddr::new(0), 10);
        assert_eq!(later, Some(b), "fall-through to the newest version");
    }

    #[test]
    fn omc_buffer_reduces_nvm_writes() {
        let cfg = small_cfg(1_000_000); // one giant epoch, like Fig 16
        let make_trace = || {
            let mut tb = TraceBuilder::new(4);
            for i in 0..3000u64 {
                // Revisit a small set of lines repeatedly from two VDs to
                // force redundant write-backs.
                let t = ThreadId((i % 4) as u16);
                tb.store(t, Addr::new((i % 150) * 64));
            }
            tb.build()
        };
        let mut plain = NvOverlaySystem::new(&cfg);
        let _ = Runner::new().run(&mut plain, &make_trace());
        let mut buffered = NvOverlaySystem::with_omc_buffer(&cfg);
        let _ = Runner::new().run(&mut buffered, &make_trace());
        let pw = plain.stats().nvm.writes(NvmWriteKind::Data);
        let bw = buffered.stats().nvm.writes(NvmWriteKind::Data);
        assert!(
            bw <= pw,
            "buffer must not increase data writes: {bw} vs {pw}"
        );
        assert!(buffered.stats().omc_buffer_hits > 0);
    }
}
