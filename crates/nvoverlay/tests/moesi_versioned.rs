//! MOESI under the versioned hierarchy (paper §IV-E: the design extends
//! to MOESI without modifying the state machine).

use nvoverlay::cst::{AdvanceCause, CstConfig, CstEvent, VersionedHierarchy};
use nvoverlay::system::NvOverlaySystem;
use nvsim::addr::{Addr, CoreId, ThreadId, VdId};
use nvsim::config::Protocol;
use nvsim::memsys::{MemOp, MemorySystem, Runner};
use nvsim::trace::TraceBuilder;
use nvsim::SimConfig;

fn cfg(protocol: Protocol) -> SimConfig {
    SimConfig::builder()
        .cores(8, 2)
        .l1(1024, 2, 4)
        .l2(4096, 4, 8)
        .llc(16 * 1024, 4, 30, 2)
        .epoch_size_stores(200)
        .protocol(protocol)
        .build()
        .unwrap()
}

fn addr(line: u64) -> Addr {
    Addr::new(line * 64)
}

#[test]
fn moesi_downgrade_keeps_version_custody_in_the_owner() {
    let c = SimConfig {
        epoch_size_stores: 1_000_000,
        ..cfg(Protocol::Moesi)
    };
    let mut h = VersionedHierarchy::new(&c, CstConfig::default());
    h.access(CoreId(0), MemOp::Store, addr(5), 50);
    h.take_events();
    // Remote load: MESI would persist the version; MOESI keeps it Owned.
    let (_, _, v) = h.access(CoreId(2), MemOp::Load, addr(5), 0);
    assert_eq!(v, 50);
    let versions: Vec<_> = h
        .take_events()
        .into_iter()
        .filter(|e| matches!(e, CstEvent::Version(_)))
        .collect();
    assert!(
        versions.is_empty(),
        "MOESI downgrade must not emit a version: {versions:?}"
    );
    // Custody (the unpersisted version) is still in VD0.
    assert_eq!(h.min_unpersisted(VdId(0)), Some(1));
    // The walker later persists it as usual.
    h.advance_epoch_explicit(VdId(0), AdvanceCause::ExplicitMark);
    h.take_events();
    let (walked, min_ver) = h.tag_walk(VdId(0));
    assert_eq!(walked.len(), 1);
    assert_eq!(walked[0].token, 50);
    assert_eq!(min_ver, 2);
}

#[test]
fn moesi_recovery_is_exact_for_every_suite_workload() {
    let c = cfg(Protocol::Moesi);
    let p = nvworkloads::SuiteParams {
        threads: 8,
        ops: 1_500,
        warmup_ops: 6_000,
        seed: 77,
    };
    for w in [
        nvworkloads::Workload::BTree,
        nvworkloads::Workload::Kmeans,
        nvworkloads::Workload::Intruder,
        nvworkloads::Workload::Ssca2,
    ] {
        let trace = nvworkloads::generate(w, &p);
        let mut sys = NvOverlaySystem::new(&c);
        let report = Runner::new().run(&mut sys, &trace);
        assert_eq!(report.load_value_mismatches, 0, "{w}: stale loads");
        let img = sys.recover().expect("recoverable");
        assert_eq!(img.len(), report.golden_image.len(), "{w}");
        for (line, token) in &report.golden_image {
            assert_eq!(img.read(*line), Some(*token), "{w}: line {line}");
        }
    }
}

#[test]
fn moesi_invariants_hold_under_random_traffic() {
    let c = cfg(Protocol::Moesi);
    let mut h = VersionedHierarchy::new(&c, CstConfig::default());
    let mut x = 7u64;
    for i in 0..20_000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let core = CoreId((x >> 33) as u16 % 8);
        let line = (x >> 40) % 120;
        if x.is_multiple_of(3) {
            h.access(core, MemOp::Store, addr(line), i + 1);
        } else {
            h.access(core, MemOp::Load, addr(line), 0);
        }
        if i % 1024 == 0 {
            h.assert_invariants();
        }
    }
    h.drain();
    h.assert_invariants();
}

#[test]
fn moesi_writes_fewer_nvm_bytes_on_read_shared_data() {
    // A producer/consumer pattern: one VD writes, others repeatedly read.
    // MESI persists the version at every downgrade cycle; MOESI keeps it
    // Owned and persists once per epoch via the walker.
    let mk_trace = || {
        let mut tb = TraceBuilder::new(8);
        for round in 0..600u64 {
            for l in 0..8u64 {
                tb.store(ThreadId(0), addr(l));
            }
            for reader in [2u16, 4, 6] {
                for l in 0..8u64 {
                    tb.load(ThreadId(reader), addr(l));
                }
            }
            let _ = round;
        }
        tb.build()
    };
    let mut mesi = NvOverlaySystem::new(&cfg(Protocol::Mesi));
    let _ = Runner::new().run(&mut mesi, &mk_trace());
    let mut moesi = NvOverlaySystem::new(&cfg(Protocol::Moesi));
    let _ = Runner::new().run(&mut moesi, &mk_trace());
    let b_mesi = mesi.stats().nvm.total_bytes();
    let b_moesi = moesi.stats().nvm.total_bytes();
    assert!(
        b_moesi < b_mesi,
        "MOESI must reduce downgrade-driven NVM writes: {b_moesi} vs {b_mesi}"
    );
}
