//! Recovery exactness across the whole configuration space: OMC buffer
//! on/off × retention policy × OMC count × protocol × storage pressure
//! (compaction live). The golden image must recover exactly under every
//! combination.

use nvoverlay::mnm::{OmcConfig, SnapshotRetention};
use nvoverlay::system::{NvOverlayOptions, NvOverlaySystem};
use nvsim::config::Protocol;
use nvsim::memsys::Runner;
use nvsim::SimConfig;
use nvworkloads::{generate, SuiteParams, Workload};

fn base_cfg(protocol: Protocol) -> SimConfig {
    SimConfig::builder()
        .cores(8, 2)
        .l1(2 * 1024, 2, 4)
        .l2(8 * 1024, 4, 8)
        .llc(64 * 1024, 4, 30, 2)
        .epoch_size_stores(400)
        .protocol(protocol)
        .build()
        .unwrap()
}

fn trace() -> nvsim::trace::Trace {
    generate(
        Workload::HashTable,
        &SuiteParams {
            threads: 8,
            ops: 1_200,
            warmup_ops: 3_000,
            seed: 5,
        },
    )
}

#[test]
fn recovery_is_exact_across_the_options_matrix() {
    let trace = trace();
    for protocol in [Protocol::Mesi, Protocol::Moesi] {
        let cfg = base_cfg(protocol);
        for retention in [SnapshotRetention::KeepAll, SnapshotRetention::DropMerged] {
            for omc_count in [1usize, 3] {
                for buffer in [None, Some((64u64, 4u32))] {
                    let opts = NvOverlayOptions {
                        omc: OmcConfig {
                            pool_pages: 256,
                            retention,
                            buffer,
                            ..OmcConfig::default()
                        },
                        omc_count,
                        ..NvOverlayOptions::default()
                    };
                    let mut sys = NvOverlaySystem::with_options(&cfg, opts);
                    let report = Runner::new().run(&mut sys, &trace);
                    assert_eq!(report.load_value_mismatches, 0);
                    let img = sys.recover().expect("recoverable");
                    let tag = format!(
                        "{protocol:?}/{retention:?}/omcs={omc_count}/buf={}",
                        buffer.is_some()
                    );
                    assert_eq!(img.len(), report.golden_image.len(), "{tag}");
                    for (l, t) in &report.golden_image {
                        assert_eq!(img.read(*l), Some(*t), "{tag}: line {l}");
                    }
                }
            }
        }
    }
}

#[test]
fn recovery_is_exact_under_compaction_pressure() {
    // A pool small enough that version compaction must run repeatedly.
    let cfg = base_cfg(Protocol::Mesi);
    let trace = trace();
    let opts = NvOverlayOptions {
        omc: OmcConfig {
            pool_pages: 24,
            grow_pages: 8,
            compaction_threshold: 0.7,
            retention: SnapshotRetention::KeepAll,
            ..OmcConfig::default()
        },
        omc_count: 2,
        ..NvOverlayOptions::default()
    };
    let mut sys = NvOverlaySystem::with_options(&cfg, opts);
    let report = Runner::new().run(&mut sys, &trace);
    let compactions: u64 = sys.mnm().omcs().iter().map(|o| o.stats().compactions).sum();
    assert!(compactions > 0, "the pool pressure must trigger compaction");
    let img = sys.recover().expect("recoverable");
    for (l, t) in &report.golden_image {
        assert_eq!(img.read(*l), Some(*t), "line {l}");
    }
}

#[test]
fn reboot_rebuilds_volatile_state_and_preserves_the_image() {
    use nvoverlay::mnm::Mnm;
    use nvsim::addr::LineAddr;
    use nvsim::nvm::Nvm;

    let mut m = Mnm::new(
        2,
        2,
        OmcConfig {
            pool_pages: 64,
            retention: SnapshotRetention::DropMerged,
            ..OmcConfig::default()
        },
    );
    let mut n = Nvm::new(4, 400, 200, 8, 100_000);
    for i in 0..200u64 {
        m.receive_version(&mut n, 0, LineAddr::new(i * 3), 1000 + i, 1 + i / 50);
    }
    m.finish(&mut n, 0, 4);
    let before: Vec<_> = {
        let mut v: Vec<_> = m.master_image().collect();
        v.sort_by_key(|(l, _)| l.raw());
        v
    };

    // Power loss + restart.
    m.simulate_reboot();
    let after: Vec<_> = {
        let mut v: Vec<_> = m.master_image().collect();
        v.sort_by_key(|(l, _)| l.raw());
        v
    };
    assert_eq!(before, after, "the persistent image survives the reboot");
    assert_eq!(m.rec_epoch(), 4);

    // The rebuilt refcounts keep GC working: superseding every line must
    // free the old pages.
    let freed_before: u64 = m.omcs().iter().map(|o| o.stats().pages_freed).sum();
    for i in 0..200u64 {
        m.receive_version(&mut n, 0, LineAddr::new(i * 3), 5000 + i, 10);
    }
    // All VDs report past epoch 10 so it merges.
    use nvsim::addr::VdId;
    m.report_min_ver(&mut n, 0, VdId(0), 11);
    m.report_min_ver(&mut n, 0, VdId(1), 11);
    let freed_after: u64 = m.omcs().iter().map(|o| o.stats().pages_freed).sum();
    assert!(
        freed_after > freed_before,
        "GC must keep collecting after the reboot ({freed_before} -> {freed_after})"
    );
    assert_eq!(m.read_master(LineAddr::new(9)), Some(5003));
}
