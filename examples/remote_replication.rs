//! Fine-grained backup & remote replication (the paper's §I usage
//! model 3, §V-E "Remote Replication").
//!
//! Every committed snapshot is shipped, as an incremental delta, to a
//! "remote" replica which replays the deltas as redo logs. After any
//! prefix of shipped epochs, the replica equals the primary's image at
//! that epoch.
//!
//! ```sh
//! cargo run --release --example remote_replication
//! ```

use nvoverlay_suite::overlay::recovery::snapshot_at;
use nvoverlay_suite::overlay::system::NvOverlaySystem;
use nvoverlay_suite::sim::addr::{LineAddr, Token};
use nvoverlay_suite::sim::memsys::Runner;
use nvoverlay_suite::sim::trace::TraceEvent;
use nvoverlay_suite::sim::SimConfig;
use nvoverlay_suite::workloads::{generate, SuiteParams, Workload};
use std::collections::HashMap;

/// The wire format of one shipped snapshot: the epoch and its dirty lines.
struct Delta {
    epoch: u64,
    lines: Vec<(LineAddr, Token)>,
}

fn main() {
    let cfg = SimConfig::builder()
        .epoch_size_stores(1_000)
        .build()
        .expect("valid configuration");
    let params = SuiteParams {
        threads: 16,
        ops: 4_000,
        warmup_ops: 16_000,
        seed: 99,
    };
    let trace = generate(Workload::RbTree, &params);

    let mut primary = NvOverlaySystem::new(&cfg);
    let report = Runner::new().run(&mut primary, &trace);
    let last = primary.rec_epoch();
    println!(
        "primary ran {} accesses, committed epochs 1..={last}",
        report.accesses
    );

    // Collect the union of lines the workload wrote (the replication
    // agent knows its working set from the trace/master table).
    let written: Vec<LineAddr> = {
        let mut v: Vec<u64> = (0..trace.thread_count())
            .flat_map(|i| trace.thread(nvoverlay_suite::sim::addr::ThreadId(i as u16)))
            .filter_map(|e| match e {
                TraceEvent::Access {
                    op: nvoverlay_suite::sim::memsys::MemOp::Store,
                    addr,
                    ..
                } => Some(addr.line().raw()),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v.into_iter().map(LineAddr::new).collect()
    };

    // Ship per-epoch deltas: lines whose value at epoch e differs from
    // their value at e-1 (exactly what the per-epoch tables store).
    let mut deltas = Vec::new();
    let mut prev: HashMap<LineAddr, Token> = HashMap::new();
    for epoch in 1..=last {
        let snap = snapshot_at(primary.mnm(), epoch, written.iter().copied());
        let mut lines = Vec::new();
        for (l, t) in snap.iter() {
            if prev.get(&l) != Some(&t) {
                lines.push((l, t));
                prev.insert(l, t);
            }
        }
        deltas.push(Delta { epoch, lines });
    }
    let shipped: usize = deltas.iter().map(|d| d.lines.len()).sum();
    println!(
        "shipped {} deltas totalling {} line updates ({} KiB on the wire)",
        deltas.len(),
        shipped,
        shipped * 64 / 1024
    );

    // Replica: replay the deltas as redo logs.
    let mut replica: HashMap<LineAddr, Token> = HashMap::new();
    for d in &deltas {
        for (l, t) in &d.lines {
            replica.insert(*l, *t);
        }
        // Consistency check after each shipped epoch.
        let expect = snapshot_at(primary.mnm(), d.epoch, written.iter().copied());
        for (l, t) in expect.iter() {
            assert_eq!(
                replica.get(&l),
                Some(&t),
                "replica diverged at epoch {}",
                d.epoch
            );
        }
    }
    println!(
        "replica verified consistent after every one of {} epochs",
        deltas.len()
    );

    // And the final replica equals the primary's crash-recovery image.
    let final_img = primary.recover().expect("recoverable");
    for (l, t) in final_img.iter() {
        assert_eq!(replica.get(&l), Some(&t), "final replica diverged at {l}");
    }
    println!(
        "final replica == primary recovery image ({} lines)",
        final_img.len()
    );
}
