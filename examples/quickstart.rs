//! Quickstart: run a multithreaded workload under NVOverlay, snapshot it
//! hundreds of times, and recover the exact memory image after a
//! simulated crash.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nvoverlay_suite::overlay::system::NvOverlaySystem;
use nvoverlay_suite::sim::memsys::{MemorySystem, Runner};
use nvoverlay_suite::sim::SimConfig;
use nvoverlay_suite::workloads::{generate, SuiteParams, Workload};

fn main() {
    // The paper's Table II system, with epochs scaled to this small run.
    let cfg = SimConfig::builder()
        .epoch_size_stores(2_000)
        .build()
        .expect("valid configuration");

    // 16 threads bulk-inserting random keys into a shared B+Tree.
    let params = SuiteParams {
        threads: 16,
        ops: 8_000,
        warmup_ops: 30_000,
        seed: 42,
    };
    let trace = generate(Workload::BTree, &params);
    println!(
        "workload: B+Tree bulk insert — {} accesses, {} stores, {} KiB written",
        trace.access_count(),
        trace.store_count(),
        trace.write_footprint() * 64 / 1024
    );

    // Run it under NVOverlay.
    let mut system = NvOverlaySystem::new(&cfg);
    let report = Runner::new().run(&mut system, &trace);

    let stats = system.stats();
    println!(
        "executed {} accesses in {} cycles ({} snapshots committed)",
        report.accesses, report.cycles, stats.epochs_completed
    );
    println!(
        "NVM traffic: {} KiB data + {} KiB mapping metadata, zero log bytes",
        stats
            .nvm
            .bytes(nvoverlay_suite::sim::stats::NvmWriteKind::Data)
            / 1024,
        stats
            .nvm
            .bytes(nvoverlay_suite::sim::stats::NvmWriteKind::MapMetadata)
            / 1024,
    );
    println!("recoverable epoch: {}", system.rec_epoch());

    // Crash! Recover from the Master Mapping Table and verify the image
    // byte-for-byte (token-for-token) against the run's golden image.
    let image = system.recover().expect("at least one epoch committed");
    let mut verified = 0;
    for (line, token) in &report.golden_image {
        assert_eq!(
            image.read(*line),
            Some(*token),
            "recovered image diverges at {line}"
        );
        verified += 1;
    }
    println!("crash recovery verified: {verified} lines match the golden image exactly");
}
