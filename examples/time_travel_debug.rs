//! Time-travel debugging (the paper's §I usage model 1 and §V-E).
//!
//! A "bug" corrupts one record partway through a run. Because NVOverlay
//! retains every epoch's snapshot independently, we can read the record
//! *at every epoch* after the fact and bisect the exact epoch the
//! corruption happened in — the watch-point debugging workflow the paper
//! motivates.
//!
//! ```sh
//! cargo run --release --example time_travel_debug
//! ```

use nvoverlay_suite::overlay::system::NvOverlaySystem;
use nvoverlay_suite::sim::addr::{Addr, LineAddr, ThreadId};
use nvoverlay_suite::sim::memsys::Runner;
use nvoverlay_suite::sim::trace::TraceBuilder;
use nvoverlay_suite::sim::SimConfig;

fn main() {
    let cfg = SimConfig::builder()
        .epoch_size_stores(1_000_000) // epochs are explicit here
        .build()
        .expect("valid configuration");
    let mut system = NvOverlaySystem::new(&cfg);

    // The watched record lives at line 0x100.
    let record = Addr::new(0x100 * 64);
    let mut tb = TraceBuilder::new(4);

    // 20 epochs of activity; the "bug" strikes in epoch 13: the record is
    // overwritten while unrelated traffic continues on other threads.
    let mut wrote: Vec<(u64, u64)> = Vec::new(); // (epoch, token)
    for epoch in 1..=20u64 {
        // Normal update of the record every 4th epoch.
        if epoch % 4 == 1 || epoch == 13 {
            let token = tb.store(ThreadId(0), record);
            wrote.push((epoch, token));
        }
        // Unrelated traffic.
        for i in 0..200u64 {
            tb.store(
                ThreadId((1 + i % 3) as u16),
                Addr::new((0x2000 + epoch * 64 + i) * 64),
            );
        }
        // The programmer's watch-point: snapshot at every epoch boundary.
        tb.epoch_mark(ThreadId(0));
    }
    let trace = tb.build();
    let _ = Runner::new().run(&mut system, &trace);

    // Debug session: read the record at every epoch (fall-through reads).
    println!("record history at line {:#x}:", record.line().raw());
    let line = LineAddr::new(0x100);
    let mut last = None;
    let mut corruption_epoch = None;
    for epoch in 1..=20u64 {
        let v = system.time_travel(line, epoch);
        if v != last {
            println!("  epoch {epoch:>2}: value changed to {v:?}");
            if epoch == 13 {
                corruption_epoch = Some(epoch);
            }
            last = v;
        }
    }
    let bug = corruption_epoch.expect("the corrupting write is visible in history");
    println!("=> bisected: the corrupting write landed in epoch {bug}");

    // Confirm against ground truth.
    let expect: Vec<u64> = wrote.iter().map(|(e, _)| *e).collect();
    assert!(expect.contains(&13), "ground truth contains the bug epoch");
    println!("ground-truth write epochs: {expect:?}");
}
