//! Head-to-head scheme comparison on one workload — a miniature of the
//! paper's Figs 11 and 12 you can point at any workload:
//!
//! ```sh
//! cargo run --release --example compare_schemes -- kmeans
//! cargo run --release --example compare_schemes -- "B+Tree"
//! ```

use nvoverlay_suite::baselines::{HwShadow, IdealSystem, Picl, PiclLevel, SwShadow, SwUndoLogging};
use nvoverlay_suite::overlay::system::NvOverlaySystem;
use nvoverlay_suite::sim::memsys::{MemorySystem, Runner};
use nvoverlay_suite::sim::stats::NvmWriteKind;
use nvoverlay_suite::sim::SimConfig;
use nvoverlay_suite::workloads::{generate, SuiteParams, Workload};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "B+Tree".to_string());
    let workload = Workload::from_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}; one of:");
        for w in Workload::ALL {
            eprintln!("  {w}");
        }
        std::process::exit(2);
    });

    let cfg = SimConfig::builder()
        .epoch_size_stores(1_500)
        .build()
        .expect("valid configuration");
    let params = SuiteParams {
        threads: 16,
        ops: 6_000,
        warmup_ops: 24_000,
        seed: 0xC0FFEE,
    };
    let trace = generate(workload, &params);
    println!(
        "{workload}: {} accesses, {} stores, write set {} KiB",
        trace.access_count(),
        trace.store_count(),
        trace.write_footprint() * 64 / 1024
    );
    println!();
    println!(
        "{:<12} {:>10} {:>8} {:>12} {:>10} {:>10}",
        "scheme", "cycles", "norm", "NVM bytes", "log B", "snapshots"
    );

    let mut systems: Vec<Box<dyn MemorySystem>> = vec![
        Box::new(IdealSystem::new(&cfg)),
        Box::new(SwUndoLogging::new(&cfg)),
        Box::new(SwShadow::new(&cfg)),
        Box::new(HwShadow::new(&cfg)),
        Box::new(Picl::new(&cfg, PiclLevel::Llc)),
        Box::new(Picl::new(&cfg, PiclLevel::L2)),
        Box::new(NvOverlaySystem::new(&cfg)),
    ];
    let mut base = None;
    for sys in &mut systems {
        let report = Runner::new().run(sys.as_mut(), &trace);
        let s = sys.stats();
        let b = *base.get_or_insert(report.cycles);
        println!(
            "{:<12} {:>10} {:>8.2} {:>12} {:>10} {:>10}",
            sys.name(),
            report.cycles,
            report.cycles as f64 / b as f64,
            s.nvm.total_bytes(),
            s.nvm.bytes(NvmWriteKind::Log),
            s.epochs_completed
        );
    }

    // Endurance view for NVOverlay (P/E cycles are the paper's §II-B
    // motivation for avoiding write amplification).
    let mut nvo = NvOverlaySystem::new(&cfg);
    let _ = Runner::new().run(&mut nvo, &trace);
    let w = nvo.nvm().wear_report();
    println!();
    println!(
        "NVOverlay wear: {} unique NVM lines, {} data writes, hottest line x{} (mean {:.2})",
        w.unique_keys, w.total_writes, w.max_key_writes, w.mean_key_writes
    );
}
