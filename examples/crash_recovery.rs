//! Low-latency crash recovery (the paper's §I usage model 4, §V-E).
//!
//! Runs the same workload under NVOverlay and under software undo
//! logging, "crashes" both, and compares (a) that both recover a
//! consistent epoch-boundary image and (b) what the snapshotting cost
//! during the run — the trade the paper quantifies in Figs 11/12.
//!
//! Then it crashes *harder*, via the `nvchaos` persistence-order
//! journal: a power cut that tears the 8-byte `rec-epoch` root pointer
//! mid-write (recovery detects the torn cell and falls back to the
//! previous root), and a stray bit flip in a Master Mapping Table word
//! (the parity check refuses to recover until the word is healed).
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use nvoverlay_suite::baselines::SwUndoLogging;
use nvoverlay_suite::chaos::{prepare, ChaosConfig, ChaosScheme, RebuildFidelity, RebuiltState};
use nvoverlay_suite::overlay::recovery::{recover_durable, RecoveryError};
use nvoverlay_suite::overlay::system::NvOverlaySystem;
use nvoverlay_suite::sim::fault::{CrashCut, PersistPayload};
use nvoverlay_suite::sim::memsys::{MemorySystem, Runner};
use nvoverlay_suite::sim::rng::Rng64;
use nvoverlay_suite::sim::stats::NvmWriteKind;
use nvoverlay_suite::sim::SimConfig;
use nvoverlay_suite::workloads::{generate, SuiteParams, Workload};

fn main() {
    let cfg = SimConfig::builder()
        .epoch_size_stores(1_500)
        .build()
        .expect("valid configuration");
    let params = SuiteParams {
        threads: 16,
        ops: 6_000,
        warmup_ops: 24_000,
        seed: 7,
    };
    let trace = generate(Workload::HashTable, &params);
    println!(
        "workload: hash-table bulk insert, {} accesses / {} stores",
        trace.access_count(),
        trace.store_count()
    );

    // --- NVOverlay ---------------------------------------------------
    let mut nvo = NvOverlaySystem::new(&cfg);
    let r1 = Runner::new().run(&mut nvo, &trace);
    let image = nvo.recover().expect("recoverable");
    for (line, token) in &r1.golden_image {
        assert_eq!(image.read(*line), Some(*token), "NVOverlay image diverged");
    }
    let s1 = nvo.stats();
    println!();
    println!("NVOverlay:");
    println!("  cycles:            {:>12}", r1.cycles);
    println!(
        "  persist stalls:    {:>12} (across 16 cores)",
        r1.stall_cycles
    );
    println!(
        "  NVM bytes:         {:>12} (log bytes: {})",
        s1.nvm.total_bytes(),
        s1.nvm.bytes(NvmWriteKind::Log)
    );
    println!("  snapshots:         {:>12}", s1.epochs_completed);
    println!(
        "  recovered image:   {:>12} lines at epoch {}",
        image.len(),
        image.epoch()
    );

    // --- SW undo logging ---------------------------------------------
    let mut swl = SwUndoLogging::new(&cfg);
    let r2 = Runner::new().run(&mut swl, &trace);
    for (line, token) in &r2.golden_image {
        assert_eq!(
            swl.recovered_image().get(line),
            Some(token),
            "SW logging image diverged"
        );
    }
    let s2 = swl.stats();
    println!();
    println!("SW undo logging:");
    println!(
        "  cycles:            {:>12}  ({:.1}x NVOverlay)",
        r2.cycles,
        r2.cycles as f64 / r1.cycles as f64
    );
    println!("  persist stalls:    {:>12}", r2.stall_cycles);
    println!(
        "  NVM bytes:         {:>12}  ({:.2}x NVOverlay, {} log bytes)",
        s2.nvm.total_bytes(),
        s2.nvm.total_bytes() as f64 / s1.nvm.total_bytes() as f64,
        s2.nvm.bytes(NvmWriteKind::Log)
    );
    println!("  epochs committed:  {:>12}", swl.epochs_committed());

    println!();
    println!("both recover a consistent image; NVOverlay does it without barriers or logs.");

    // --- adversarial crashes (nvchaos) -------------------------------
    // Re-run NVOverlay with the persistence-order fault plane attached,
    // harvesting the journal of every NVM write. Shorter epochs here so
    // the run advances `rec-epoch` (and rewrites its root cell) many
    // times mid-run — the fallback demo needs a previous root to land on.
    let chaos_cfg = SimConfig::builder()
        .epoch_size_stores(400)
        .build()
        .expect("valid configuration");
    let run = prepare(&trace, &chaos_cfg, ChaosConfig::new(ChaosScheme::NvOverlay));
    let plane = run.plane();

    // A power cut exactly while the last `rec-epoch` root pointer is
    // being written: the 8-byte cell is torn. The root write is fenced
    // behind everything issued before it, so "all earlier writes
    // durable, root torn" is a legal prefix-closed cut.
    let root = plane
        .records()
        .iter()
        .rev()
        .find(|r| matches!(r.payload, Some(PersistPayload::RecEpochRoot { .. })))
        .expect("the run commits at least one epoch");
    let cut = CrashCut {
        site: root.id as usize + 1,
        crash_time: root.enqueue,
        lost: vec![],
        torn: Some(root.id),
    };
    let mut state = RebuiltState::rebuild(plane, &cut, RebuildFidelity::Exact);
    println!();
    println!("torn-write crash (power cut mid-root-update):");
    match recover_durable(&state) {
        Err(e @ RecoveryError::TornMasterRoot { .. }) => {
            println!("  detected: {e}");
        }
        other => panic!("torn root went undetected: {other:?}"),
    }
    state.fallback_to_previous_root();
    let img = recover_durable(&state).expect("the previous root cell is intact");
    println!(
        "  fell back to the previous root: epoch {}, {} lines recovered",
        img.epoch(),
        img.len()
    );

    // In-array corruption: one bit of one master mapping word flips.
    // Every mapping word carries a parity bit, so recovery refuses to
    // trust the table instead of silently loading a wrong version.
    println!();
    println!("detected-corruption recovery (bit flip in a mapping word):");
    let mut rng = Rng64::seed_from_u64(7);
    let (line, original, bit) = state.inject_flip(&mut rng).expect("mapping words survived");
    match recover_durable(&state) {
        Err(e @ RecoveryError::CorruptMapping { .. }) => {
            println!("  flipped bit {bit}; detected: {e}");
        }
        other => panic!("bit flip went undetected: {other:?}"),
    }
    state.heal(line, original);
    let healed = recover_durable(&state).expect("healed table recovers again");
    println!(
        "  healed the word: epoch {}, {} lines recovered",
        healed.epoch(),
        healed.len()
    );
}
