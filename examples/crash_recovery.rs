//! Low-latency crash recovery (the paper's §I usage model 4, §V-E).
//!
//! Runs the same workload under NVOverlay and under software undo
//! logging, "crashes" both, and compares (a) that both recover a
//! consistent epoch-boundary image and (b) what the snapshotting cost
//! during the run — the trade the paper quantifies in Figs 11/12.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use nvoverlay_suite::baselines::SwUndoLogging;
use nvoverlay_suite::overlay::system::NvOverlaySystem;
use nvoverlay_suite::sim::memsys::{MemorySystem, Runner};
use nvoverlay_suite::sim::stats::NvmWriteKind;
use nvoverlay_suite::sim::SimConfig;
use nvoverlay_suite::workloads::{generate, SuiteParams, Workload};

fn main() {
    let cfg = SimConfig::builder()
        .epoch_size_stores(1_500)
        .build()
        .expect("valid configuration");
    let params = SuiteParams {
        threads: 16,
        ops: 6_000,
        warmup_ops: 24_000,
        seed: 7,
    };
    let trace = generate(Workload::HashTable, &params);
    println!(
        "workload: hash-table bulk insert, {} accesses / {} stores",
        trace.access_count(),
        trace.store_count()
    );

    // --- NVOverlay ---------------------------------------------------
    let mut nvo = NvOverlaySystem::new(&cfg);
    let r1 = Runner::new().run(&mut nvo, &trace);
    let image = nvo.recover().expect("recoverable");
    for (line, token) in &r1.golden_image {
        assert_eq!(image.read(*line), Some(*token), "NVOverlay image diverged");
    }
    let s1 = nvo.stats();
    println!();
    println!("NVOverlay:");
    println!("  cycles:            {:>12}", r1.cycles);
    println!(
        "  persist stalls:    {:>12} (across 16 cores)",
        r1.stall_cycles
    );
    println!(
        "  NVM bytes:         {:>12} (log bytes: {})",
        s1.nvm.total_bytes(),
        s1.nvm.bytes(NvmWriteKind::Log)
    );
    println!("  snapshots:         {:>12}", s1.epochs_completed);
    println!(
        "  recovered image:   {:>12} lines at epoch {}",
        image.len(),
        image.epoch()
    );

    // --- SW undo logging ---------------------------------------------
    let mut swl = SwUndoLogging::new(&cfg);
    let r2 = Runner::new().run(&mut swl, &trace);
    for (line, token) in &r2.golden_image {
        assert_eq!(
            swl.recovered_image().get(line),
            Some(token),
            "SW logging image diverged"
        );
    }
    let s2 = swl.stats();
    println!();
    println!("SW undo logging:");
    println!(
        "  cycles:            {:>12}  ({:.1}x NVOverlay)",
        r2.cycles,
        r2.cycles as f64 / r1.cycles as f64
    );
    println!("  persist stalls:    {:>12}", r2.stall_cycles);
    println!(
        "  NVM bytes:         {:>12}  ({:.2}x NVOverlay, {} log bytes)",
        s2.nvm.total_bytes(),
        s2.nvm.total_bytes() as f64 / s1.nvm.total_bytes() as f64,
        s2.nvm.bytes(NvmWriteKind::Log)
    );
    println!("  epochs committed:  {:>12}", swl.epochs_committed());

    println!();
    println!("both recover a consistent image; NVOverlay does it without barriers or logs.");
}
