//! Mid-run crash consistency.
//!
//! The paper's §III-C relaxed epoch model: a snapshot "may not be the
//! exact memory image at any real-time point", but it must be a
//! *consistent cut* of the causality order. Two layers of testing:
//!
//! * [`boundary_crash_smoke`] — the original fast smoke: stop issuing
//!   accesses at a few points (no shutdown drain) and recover from the
//!   live master tables, checking the three cut invariants by hand.
//! * The `nvchaos` harness tests — crash *inside* the persistence
//!   machinery itself: the persistence-order journal makes every NVM
//!   write a crash site, so cuts land between the metadata chunks of
//!   one OMC flush, mid-`Mmaster` root update, and inside context
//!   dumps, with in-flight writes dropped or torn. The same three
//!   invariants are checked per site against the trace oracle.

use nvoverlay_suite::chaos::{prepare, ChaosConfig, ChaosScheme, RebuildFidelity, SiteCategory};
use nvoverlay_suite::overlay::system::NvOverlaySystem;
use nvoverlay_suite::sim::addr::{Addr, CoreId, LineAddr, ThreadId, Token};
use nvoverlay_suite::sim::memsys::{MemOp, MemorySystem};
use nvoverlay_suite::sim::trace::{Trace, TraceBuilder};
use nvoverlay_suite::sim::SimConfig;
use std::collections::HashMap;

fn cfg() -> SimConfig {
    SimConfig::builder()
        .cores(8, 2)
        .l1(4 * 1024, 4, 4)
        .l2(32 * 1024, 8, 8)
        .llc(512 * 1024, 8, 30, 2)
        .epoch_size_stores(300)
        .build()
        .unwrap()
}

/// One interleaved access plan: (core, line, token, seq-within-thread).
fn build_plan() -> Vec<(CoreId, LineAddr, Token)> {
    // Each of 8 threads writes a private region round-robin; every 7th
    // access goes to a shared region (cross-VD coherence traffic).
    let mut plan = Vec::new();
    let mut token = 1u64;
    for round in 0..1200u64 {
        for t in 0..8u16 {
            let line = if (round + t as u64).is_multiple_of(7) {
                LineAddr::new(0x9000 + (round % 40))
            } else {
                LineAddr::new(0x1000 * (t as u64 + 1) + round % 200)
            };
            plan.push((CoreId(t), line, token));
            token += 1;
        }
    }
    plan
}

/// The same plan as a replayable [`Trace`] for the chaos harness.
fn plan_trace() -> Trace {
    let mut b = TraceBuilder::new(8);
    for (c, l, tok) in build_plan() {
        b.store_with_token(ThreadId(c.0), Addr::from(l), tok);
    }
    b.build()
}

#[test]
fn boundary_crash_smoke() {
    let cfg = cfg();
    let plan = build_plan();

    // Thread-order metadata: token -> (thread, seq).
    let mut order: HashMap<Token, (u16, u64)> = HashMap::new();
    let mut seqs = [0u64; 8];
    // Written tokens per line, in issue order.
    let mut line_writes: HashMap<LineAddr, Vec<Token>> = HashMap::new();
    for (c, l, tok) in &plan {
        order.insert(*tok, (c.0, seqs[c.index()]));
        seqs[c.index()] += 1;
        line_writes.entry(*l).or_default().push(*tok);
    }

    for crash_at in [4500usize, 9599] {
        let mut sys = NvOverlaySystem::new(&cfg);
        let mut now = 0u64;
        for (c, l, tok) in plan.iter().take(crash_at) {
            let out = sys.access(*c, MemOp::Store, Addr::from(*l), *tok, now);
            now += out.latency + 2;
        }
        // CRASH: no finish(), no drain. Recover from what is durable.
        let rec = sys.rec_epoch();
        if rec == 0 {
            continue; // nothing committed yet at this crash point
        }
        let img = sys.recover().expect("rec_epoch > 0");
        assert!(!img.is_empty(), "crash@{crash_at}: empty image");

        // (1) Every recovered token was really written to that line.
        for (l, t) in img.iter() {
            let writes = line_writes
                .get(&l)
                .unwrap_or_else(|| panic!("crash@{crash_at}: unknown line {l}"));
            assert!(
                writes.contains(&t),
                "crash@{crash_at}: line {l} has token {t} never written there"
            );
        }

        // (2) Prefix-cut property on private lines: for each thread, the
        // recovered "last write seq" per private line must be the latest
        // write to that line below a single cut point.
        for t in 0..8u16 {
            // Private lines of thread t with their recovered seq.
            let mut recovered: Vec<(LineAddr, u64)> = Vec::new();
            for (l, tok) in img.iter() {
                if l.raw() >= 0x9000 {
                    continue; // shared region
                }
                if (l.raw() / 0x1000) != (t as u64 + 1) {
                    continue;
                }
                let (tt, s) = order[&tok];
                assert_eq!(tt, t, "private line recovered with foreign token");
                recovered.push((l, s));
            }
            // Cut point: max recovered seq for the thread.
            let Some(&(_, cut)) = recovered.iter().max_by_key(|(_, s)| *s) else {
                continue;
            };
            // Every private line whose last write at-or-before `cut`
            // exists must be recovered at exactly that write.
            for (l, writes) in &line_writes {
                if l.raw() >= 0x9000 || (l.raw() / 0x1000) != (t as u64 + 1) {
                    continue;
                }
                let expect = writes.iter().rfind(|tok| order[tok].1 <= cut).copied();
                if let Some(e) = expect {
                    assert_eq!(
                        img.read(*l),
                        Some(e),
                        "crash@{crash_at}, thread {t}: line {l} not at the cut"
                    );
                }
            }
        }

        // (3) The image equals the fall-through snapshot at rec-epoch.
        let snap = nvoverlay_suite::overlay::recovery::snapshot_at(
            sys.mnm(),
            rec,
            img.iter().map(|(l, _)| l),
        );
        for (l, t) in img.iter() {
            assert_eq!(snap.read(l), Some(t), "crash@{crash_at}: snapshot mismatch");
        }
    }
}

/// The ported harness test: crash sites land *inside* OMC flushes
/// (between the metadata chunks of one merge), mid-`Mmaster` root
/// update, and inside context dumps; each cut drops or tears in-flight
/// writes before recovery runs. Every explored site must uphold the
/// three consistency-cut invariants.
#[test]
fn interior_crash_sites_are_consistent_cuts() {
    let ccfg = ChaosConfig {
        sites: 160,
        ..ChaosConfig::new(ChaosScheme::NvOverlay)
    };
    let run = prepare(&plan_trace(), &cfg(), ccfg);
    let results: Vec<_> = (0..run.site_count()).map(|i| run.check_site(i)).collect();
    let report = run.summarize(&results);

    assert!(
        report.ok(),
        "interior crash sites violated the cut invariants: {:#?}",
        report.violations
    );
    // The stratified sample must actually land inside the OMC flush and
    // the Mmaster update sequences, not just at data writes.
    let inside_flush = results
        .iter()
        .filter(|r| r.category == SiteCategory::OmcFlushMeta)
        .count();
    let at_root = results
        .iter()
        .filter(|r| r.category == SiteCategory::MasterRoot)
        .count();
    assert!(inside_flush > 0, "no crash site inside an OMC flush");
    assert!(at_root > 0, "no crash site at an Mmaster root update");
    // The cuts must be doing real damage: in-flight writes dropped, and
    // several epochs still recovered underneath.
    assert!(report.dropped_writes > 0, "cuts never dropped a write");
    assert!(report.max_recovered_epoch >= 3, "too few epochs recovered");
}

/// Harness self-test: a recovery implementation that ignores the
/// rec-epoch filter (leaking uncommitted versions into the image) must
/// be caught by the same invariants that pass above.
#[test]
fn broken_recovery_is_demonstrably_caught() {
    let ccfg = ChaosConfig {
        sites: 120,
        fidelity: RebuildFidelity::BrokenNoEpochFilter,
        ..ChaosConfig::new(ChaosScheme::NvOverlay)
    };
    let run = prepare(&plan_trace(), &cfg(), ccfg);
    let results: Vec<_> = (0..run.site_count()).map(|i| run.check_site(i)).collect();
    let report = run.summarize(&results);
    assert!(
        !report.ok(),
        "an epoch-filter-less recovery slipped past the invariants"
    );
}

#[test]
fn crash_points_cover_multiple_epochs() {
    // Make sure the tests above actually exercise committed state.
    let cfg = cfg();
    let plan = build_plan();
    let mut sys = NvOverlaySystem::new(&cfg);
    let mut now = 0u64;
    for (c, l, tok) in &plan {
        let out = sys.access(*c, MemOp::Store, Addr::from(*l), *tok, now);
        now += out.latency + 2;
    }
    assert!(
        sys.rec_epoch() >= 3,
        "plan must commit several epochs mid-run, got {}",
        sys.rec_epoch()
    );
}
