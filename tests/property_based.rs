//! Randomized property tests for the invariants listed in DESIGN.md §6.
//!
//! Previously written with `proptest`; the build environment has no
//! registry access, so each property now drives a seeded [`Rng64`]
//! generator over many randomized cases. Cases are fully deterministic
//! per seed, so failures reproduce exactly.

use nvoverlay_suite::overlay::epoch::{reconstruct_abs, Epoch, HALF_SPACE};
use nvoverlay_suite::overlay::mnm::{NvmLoc, OmcBuffer, PagePool, RadixTable};
use nvoverlay_suite::overlay::system::NvOverlaySystem;
use nvoverlay_suite::sim::addr::{Addr, LineAddr, ThreadId};
use nvoverlay_suite::sim::cache::CacheArray;
use nvoverlay_suite::sim::memsys::Runner;
use nvoverlay_suite::sim::rng::Rng64;
use nvoverlay_suite::sim::trace::TraceBuilder;
use nvoverlay_suite::sim::SimConfig;
use std::collections::HashMap;

const CASES: u64 = 64;

/// Epoch serial arithmetic is a strict total order within half the
/// space: exactly one of {a newer b, b newer a, a == b}.
#[test]
fn epoch_order_is_total_within_window() {
    let mut rng = Rng64::seed_from_u64(0x01);
    for _ in 0..CASES {
        let base = rng.gen_range(0u64..u64::from(u16::MAX) * 4);
        let d = rng.gen_range(1u64..HALF_SPACE);
        let a = Epoch::from_abs(base + d);
        let b = Epoch::from_abs(base);
        assert!(a.newer_than(b));
        assert!(!b.newer_than(a));
        assert!(!a.newer_than(a));
        assert!(a.at_least(b) && a.at_least(a));
    }
}

/// Tag reconstruction inverts tagging for any reference within the
/// half-space window.
#[test]
fn epoch_reconstruction_round_trips() {
    let mut rng = Rng64::seed_from_u64(0x02);
    for _ in 0..CASES {
        let abs = rng.gen_range(0u64..1 << 40);
        let delta = rng.gen_range(0u64..HALF_SPACE - 1) as i64;
        let sign = if abs.is_multiple_of(2) { 1 } else { -1 };
        let reference = abs as i64 + sign * delta;
        if reference < 0 {
            continue;
        }
        let got = reconstruct_abs(Epoch::from_abs(abs), reference as u64);
        assert_eq!(got, abs);
    }
}

/// The radix table behaves exactly like a map from lines to locations,
/// and its size metric only grows with node count.
#[test]
fn radix_table_matches_model() {
    let mut rng = Rng64::seed_from_u64(0x03);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..300);
        let mut table = RadixTable::new();
        let mut model: HashMap<u64, NvmLoc> = HashMap::new();
        for _ in 0..n {
            let line = rng.gen_range(0u64..1 << 30);
            let loc = NvmLoc {
                page: rng.gen_range(0u32..512),
                slot: rng.gen_range(0u8..64),
            };
            let fx = table.insert(LineAddr::new(line), loc);
            let old = model.insert(line, loc);
            assert_eq!(fx.displaced, old);
        }
        assert_eq!(table.len(), model.len() as u64);
        for (&line, &loc) in &model {
            assert_eq!(table.get(LineAddr::new(line)), Some(loc));
        }
        let listed: HashMap<u64, NvmLoc> = table.iter().map(|(l, v)| (l.raw(), v)).collect();
        assert_eq!(listed, model);
    }
}

/// The page pool never double-allocates, never loses pages, and its
/// bitmap agrees with a reference model.
#[test]
fn page_pool_matches_model() {
    let mut rng = Rng64::seed_from_u64(0x04);
    for _ in 0..CASES {
        let steps = rng.gen_range(1usize..300);
        let mut pool = PagePool::new(64);
        let mut live: Vec<u32> = Vec::new();
        for _ in 0..steps {
            let alloc = rng.gen_bool(0.5);
            if alloc || live.is_empty() {
                match pool.allocate() {
                    Ok(p) => {
                        assert!(!live.contains(&p), "double allocation of {p}");
                        live.push(p);
                    }
                    Err(_) => assert_eq!(live.len(), 64),
                }
            } else {
                let p = live.swap_remove(live.len() / 2);
                pool.free(p);
                assert!(!pool.is_allocated(p));
            }
            assert_eq!(pool.allocated(), live.len());
            for &p in &live {
                assert!(pool.is_allocated(p));
            }
        }
    }
}

/// The OMC buffer conserves versions: every offered (line, epoch)
/// version is either retained (newest per line), spilled, or was
/// superseded by a same-epoch rewrite.
#[test]
fn omc_buffer_conserves_versions() {
    let mut rng = Rng64::seed_from_u64(0x05);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..200);
        let mut buf = OmcBuffer::new(4, 2);
        // Model: newest (epoch, token) per (line, epoch) pair still owed.
        let mut owed: HashMap<(u64, u64), u64> = HashMap::new();
        let mut spilled: Vec<(u64, u64, u64)> = Vec::new();
        for i in 0..n {
            let line = rng.gen_range(0u64..24);
            let ep_step = rng.gen_range(1u64..4);
            let token = 1000 + i as u64;
            // Epochs per line must be non-decreasing (protocol order).
            let max_ep = owed
                .keys()
                .filter(|(l, _)| *l == line)
                .map(|(_, e)| *e)
                .max()
                .unwrap_or(0);
            let epoch = ep_step + max_ep;
            let out = buf.offer(LineAddr::new(line), token, epoch);
            owed.insert((line, epoch), token);
            for s in out.spilled {
                spilled.push((s.line.raw(), s.abs_epoch, s.token));
            }
        }
        for s in buf.drain() {
            spilled.push((s.line.raw(), s.abs_epoch, s.token));
        }
        // Everything owed must be accounted for among spills (exactly the
        // newest token of each (line, epoch)).
        for ((line, epoch), token) in owed {
            assert!(
                spilled.contains(&(line, epoch, token)),
                "version (line {line}, epoch {epoch}) lost"
            );
        }
    }
}

/// The cache array holds exactly what a bounded model predicts: every
/// resident line maps to the value last inserted/updated, and capacity
/// is never exceeded.
#[test]
fn cache_array_matches_model() {
    let mut rng = Rng64::seed_from_u64(0x06);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..300);
        let mut cache: CacheArray<u64> = CacheArray::new(4, 2);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for i in 0..n {
            let line = rng.gen_range(0u64..64);
            let v = i as u64;
            if cache.contains(LineAddr::new(line)) {
                *cache.get_mut(LineAddr::new(line)).unwrap() = v;
            } else if let Some((gone, _)) = cache.insert(LineAddr::new(line), v) {
                model.remove(&gone.raw());
            }
            model.insert(line, v);
            assert!(cache.len() <= cache.capacity());
        }
        for (line, v) in &model {
            assert_eq!(cache.peek(LineAddr::new(*line)), Some(v));
        }
        assert_eq!(cache.len(), model.len());
    }
}

/// The versioned hierarchy's protocol invariants (inclusion, version
/// ordering, single-writer, tag windows) hold at every quiescent point
/// of ANY random access sequence.
#[test]
fn cst_invariants_hold_under_random_traffic() {
    use nvoverlay_suite::overlay::cst::{AdvanceCause, CstConfig, VersionedHierarchy};
    use nvoverlay_suite::sim::addr::{CoreId, VdId};
    use nvoverlay_suite::sim::memsys::MemOp;
    let mut rng = Rng64::seed_from_u64(0x07);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..300);
        let epoch = rng.gen_range(10u64..100);
        let cfg = SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(epoch)
            .build()
            .unwrap();
        let mut h = VersionedHierarchy::new(&cfg, CstConfig::default());
        for i in 0..n {
            let t = rng.gen_range(0u16..4);
            let line = rng.gen_range(0u64..120);
            let op = if rng.gen_bool(0.5) {
                MemOp::Store
            } else {
                MemOp::Load
            };
            h.access(CoreId(t), op, Addr::new(line * 64), i as u64 + 1);
            if i % 16 == 0 {
                let v = h.check_invariants();
                assert!(v.is_empty(), "violations after access {i}: {v:?}");
            }
            if i % 64 == 63 {
                let vd = VdId((i as u16 / 64) % 2);
                h.advance_epoch_explicit(vd, AdvanceCause::ExplicitMark);
                h.tag_walk(vd);
            }
        }
        h.drain();
        let v = h.check_invariants();
        assert!(v.is_empty(), "violations after drain: {v:?}");
    }
}

/// Trace serialization round-trips any random trace bit-exactly.
#[test]
fn trace_io_round_trips() {
    let mut rng = Rng64::seed_from_u64(0x08);
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..300);
        let mut tb = TraceBuilder::new(4);
        for _ in 0..n {
            let t = rng.gen_range(0u16..4);
            let line = rng.gen_range(0u64..1000);
            match rng.gen_range(0u8..3) {
                0 => {
                    tb.load(ThreadId(t), Addr::new(line * 64));
                }
                1 => {
                    tb.store(ThreadId(t), Addr::new(line * 64));
                }
                _ => {
                    tb.epoch_mark(ThreadId(t));
                }
            }
        }
        let trace = tb.build();
        let mut buf = Vec::new();
        nvoverlay_suite::sim::trace_io::write_trace(&trace, &mut buf).unwrap();
        let back = nvoverlay_suite::sim::trace_io::read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.thread_count(), trace.thread_count());
        for t in 0..4u16 {
            assert_eq!(back.thread(ThreadId(t)), trace.thread(ThreadId(t)));
        }
    }
}

/// SnapshotStore::diff equals a brute-force model over any random
/// version stream.
#[test]
fn snapshot_diff_matches_model() {
    use nvoverlay_suite::overlay::mnm::{Mnm, OmcConfig};
    use nvoverlay_suite::overlay::SnapshotStore;
    use nvoverlay_suite::sim::nvm::Nvm;

    let mut rng = Rng64::seed_from_u64(0x09);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..150);
        let mut m = Mnm::new(
            2,
            1,
            OmcConfig {
                pool_pages: 64,
                ..OmcConfig::default()
            },
        );
        let mut nvm = Nvm::new(4, 400, 200, 8, 100_000);
        // Per-line epochs must be non-decreasing (protocol order); build a
        // model of value-at-epoch as we go.
        let mut next_ep: HashMap<u64, u64> = HashMap::new();
        let mut writes: Vec<(u64, u64, u64)> = Vec::new(); // (line, epoch, token)
        let mut max_ep = 1;
        for i in 0..n {
            let line = rng.gen_range(0u64..24);
            let ep = rng.gen_range(1u64..6);
            let e = next_ep.get(&line).copied().unwrap_or(1).max(ep);
            next_ep.insert(line, e);
            let token = 10_000 + i as u64;
            m.receive_version(&mut nvm, 0, LineAddr::new(line), token, e);
            writes.push((line, e, token));
            max_ep = max_ep.max(e);
        }
        m.finish(&mut nvm, 0, max_ep);
        let store = SnapshotStore::new(&m);

        let value_at = |line: u64, epoch: u64| -> Option<u64> {
            writes
                .iter()
                .rfind(|(l, e, _)| *l == line && *e <= epoch)
                .map(|(_, _, t)| *t)
        };
        // Check diff between every adjacent epoch pair up to max_ep.
        for from in 1..max_ep {
            let to = from + 1;
            let d = store.diff(from, to).expect("readable");
            // Model: lines whose value differs.
            let mut expect: Vec<u64> = (0..24)
                .filter(|&l| value_at(l, from) != value_at(l, to))
                .collect();
            expect.sort_unstable();
            let got: Vec<u64> = d.iter().map(|c| c.line.raw()).collect();
            assert_eq!(got, expect, "diff({from}, {to})");
            for c in d {
                assert_eq!(c.before, value_at(c.line.raw(), from));
                assert_eq!(c.after, value_at(c.line.raw(), to));
            }
        }
    }
}

/// End-to-end: ANY random multithreaded trace recovers exactly the
/// golden image after finish (the headline correctness property).
#[test]
fn random_traces_recover_exactly() {
    let mut rng = Rng64::seed_from_u64(0x0A);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..400);
        let epoch = rng.gen_range(20u64..200);
        let cfg = SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(epoch)
            .build()
            .unwrap();
        let mut tb = TraceBuilder::new(4);
        for _ in 0..n {
            let t = rng.gen_range(0u16..4);
            let line = rng.gen_range(0u64..160);
            if rng.gen_bool(0.5) {
                tb.store(ThreadId(t), Addr::new(line * 64));
            } else {
                tb.load(ThreadId(t), Addr::new(line * 64));
            }
        }
        let trace = tb.build();
        if trace.store_count() == 0 {
            continue;
        }
        let mut sys = NvOverlaySystem::new(&cfg);
        let report = Runner::new().run(&mut sys, &trace);
        let img = sys.recover().expect("stores committed");
        assert_eq!(img.len(), report.golden_image.len());
        for (line, token) in &report.golden_image {
            assert_eq!(img.read(*line), Some(*token));
        }
    }
}
