//! Cross-crate integration: every scheme runs the same workloads on the
//! same hierarchy, recovers consistent images, and behaves
//! deterministically.

use nvoverlay_suite::baselines::{HwShadow, IdealSystem, Picl, PiclLevel, SwShadow, SwUndoLogging};
use nvoverlay_suite::overlay::system::NvOverlaySystem;
use nvoverlay_suite::sim::memsys::{MemorySystem, Runner};
use nvoverlay_suite::sim::stats::NvmWriteKind;
use nvoverlay_suite::sim::SimConfig;
use nvoverlay_suite::workloads::{generate, SuiteParams, Workload};

fn cfg() -> SimConfig {
    SimConfig::builder()
        .cores(16, 2)
        .l1(8 * 1024, 4, 4)
        .l2(64 * 1024, 8, 8)
        .llc(2 * 1024 * 1024, 8, 30, 4)
        .epoch_size_stores(1_000)
        .build()
        .unwrap()
}

fn params() -> SuiteParams {
    SuiteParams {
        threads: 16,
        ops: 2_500,
        warmup_ops: 10_000,
        seed: 123,
    }
}

#[test]
fn nvoverlay_recovers_every_workload_exactly() {
    let cfg = cfg();
    for w in Workload::ALL {
        let trace = generate(w, &params());
        let mut sys = NvOverlaySystem::new(&cfg);
        let report = Runner::new().run(&mut sys, &trace);
        assert_eq!(report.load_value_mismatches, 0, "{w}: stale loads");
        let img = sys.recover().unwrap_or_else(|e| panic!("{w}: {e}"));
        assert_eq!(
            img.len(),
            report.golden_image.len(),
            "{w}: image line-count mismatch"
        );
        for (line, token) in &report.golden_image {
            assert_eq!(img.read(*line), Some(*token), "{w}: line {line}");
        }
    }
}

#[test]
fn every_scheme_returns_coherent_load_values_under_both_protocols() {
    // The runner cross-checks every load against its golden model; any
    // stale value is a coherence bug. Checked under MESI and MOESI.
    for protocol in [
        nvoverlay_suite::sim::config::Protocol::Mesi,
        nvoverlay_suite::sim::config::Protocol::Moesi,
    ] {
        let cfg = SimConfig { protocol, ..cfg() };
        every_scheme_coherent(&cfg);
    }
}

fn every_scheme_coherent(cfg: &SimConfig) {
    for w in [Workload::BTree, Workload::Kmeans, Workload::Intruder] {
        let trace = generate(w, &params());
        let factories: Vec<Box<dyn Fn() -> Box<dyn MemorySystem>>> = vec![
            Box::new(|| Box::new(IdealSystem::new(cfg))),
            Box::new(|| Box::new(SwUndoLogging::new(cfg))),
            Box::new(|| Box::new(SwShadow::new(cfg))),
            Box::new(|| Box::new(HwShadow::new(cfg))),
            Box::new(|| Box::new(Picl::new(cfg, PiclLevel::Llc))),
            Box::new(|| Box::new(Picl::new(cfg, PiclLevel::L2))),
            Box::new(|| Box::new(NvOverlaySystem::new(cfg))),
        ];
        for mk in &factories {
            let mut sys = mk();
            let r = Runner::new().run(sys.as_mut(), &trace);
            assert_eq!(
                r.load_value_mismatches,
                0,
                "{w} / {} ({:?}): stale loads",
                sys.name(),
                cfg.protocol
            );
        }
    }
}

#[test]
fn software_schemes_recover_the_committed_image() {
    let cfg = cfg();
    let trace = generate(Workload::RbTree, &params());
    let mut undo = SwUndoLogging::new(&cfg);
    let r = Runner::new().run(&mut undo, &trace);
    for (l, t) in &r.golden_image {
        assert_eq!(undo.recovered_image().get(l), Some(t));
    }
    let mut shadow = SwShadow::new(&cfg);
    let r = Runner::new().run(&mut shadow, &trace);
    for (l, t) in &r.golden_image {
        assert_eq!(shadow.recovered_image().get(l), Some(t));
    }
    let mut hw = HwShadow::new(&cfg);
    let r = Runner::new().run(&mut hw, &trace);
    for (l, t) in &r.golden_image {
        assert_eq!(hw.recovered_image().get(l), Some(t));
    }
    let mut picl = Picl::new(&cfg, PiclLevel::Llc);
    let r = Runner::new().run(&mut picl, &trace);
    let img = picl.recovered_image();
    for (l, t) in &r.golden_image {
        assert_eq!(img.get(l), Some(t));
    }
}

#[test]
fn all_schemes_are_deterministic() {
    let cfg = cfg();
    let trace = generate(Workload::Vacation, &params());
    let run = |mk: &dyn Fn() -> Box<dyn MemorySystem>| {
        let mut sys = mk();
        let r = Runner::new().run(sys.as_mut(), &trace);
        (r.cycles, sys.stats().nvm.total_bytes())
    };
    let factories: Vec<Box<dyn Fn() -> Box<dyn MemorySystem>>> = vec![
        Box::new(|| Box::new(IdealSystem::new(&cfg))),
        Box::new(|| Box::new(SwUndoLogging::new(&cfg))),
        Box::new(|| Box::new(Picl::new(&cfg, PiclLevel::L2))),
        Box::new(|| Box::new(NvOverlaySystem::new(&cfg))),
    ];
    for f in &factories {
        assert_eq!(run(f.as_ref()), run(f.as_ref()), "non-deterministic run");
    }
}

#[test]
fn paper_orderings_hold_across_the_suite() {
    // The headline claims, checked per workload: (1) NVOverlay never
    // writes log bytes; (2) PiCL's total bytes exceed NVOverlay's on the
    // index workloads (Fig 12's 29%–47% reduction claim); (3) software
    // schemes stall, hardware schemes stall less.
    let cfg = cfg();
    for w in [
        Workload::HashTable,
        Workload::BTree,
        Workload::Art,
        Workload::RbTree,
    ] {
        let trace = generate(w, &params());
        let mut nvo = NvOverlaySystem::new(&cfg);
        let rn = Runner::new().run(&mut nvo, &trace);
        let mut picl = Picl::new(&cfg, PiclLevel::Llc);
        let rp = Runner::new().run(&mut picl, &trace);
        let mut swl = SwUndoLogging::new(&cfg);
        let rs = Runner::new().run(&mut swl, &trace);

        assert_eq!(nvo.stats().nvm.bytes(NvmWriteKind::Log), 0, "{w}");
        assert!(
            picl.stats().nvm.total_bytes() > nvo.stats().nvm.total_bytes(),
            "{w}: PiCL {} vs NVOverlay {}",
            picl.stats().nvm.total_bytes(),
            nvo.stats().nvm.total_bytes()
        );
        assert!(
            rs.cycles > rp.cycles && rs.cycles > rn.cycles,
            "{w}: software logging must be slowest"
        );
    }
}

#[test]
fn epoch_marks_drive_every_scheme() {
    // Explicit epoch marks produce snapshots/commits under all schemes.
    let cfg = cfg();
    let mut tb = nvoverlay_suite::sim::trace::TraceBuilder::new(4);
    for e in 0..5 {
        for i in 0..50u64 {
            tb.store(
                nvoverlay_suite::sim::addr::ThreadId((i % 4) as u16),
                nvoverlay_suite::sim::addr::Addr::new((e * 100 + i) * 64),
            );
        }
        tb.epoch_mark(nvoverlay_suite::sim::addr::ThreadId(0));
    }
    let trace = tb.build();
    let mut nvo = NvOverlaySystem::new(&cfg);
    let _ = Runner::new().run(&mut nvo, &trace);
    assert!(nvo.stats().epochs_completed >= 5);
    let mut swl = SwUndoLogging::new(&cfg);
    let _ = Runner::new().run(&mut swl, &trace);
    assert!(swl.epochs_committed() >= 5);
}
