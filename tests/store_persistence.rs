//! Backup/restore round trips through the persistent snapshot store.
//!
//! The store's contract (DESIGN.md §8h) is that a restored snapshot is
//! *indistinguishable* from the live one: `SnapshotExport::rebuild`
//! produces a real `Mnm`, so §V-E recovery, `SnapshotStore` epoch
//! resolution — including 16-bit wrap-around semantics — and
//! `nvserve::Mount` all answer identically on the restored image. These
//! tests pin that end to end through the `nvoverlay_suite` facade:
//!
//! * a full simulated workload is backed up, restored from the written
//!   bytes, and compared read-for-read against the live system;
//! * a wrap-straddling history (epochs a full sense window apart) keeps
//!   its `Wrapped` rejection boundary after a round trip.

use nvoverlay_suite::overlay::mnm::{Mnm, OmcConfig};
use nvoverlay_suite::overlay::system::NvOverlaySystem;
use nvoverlay_suite::overlay::{QueryError, SnapshotStore, EPOCH_SENSE_WINDOW};
use nvoverlay_suite::serve::Mount;
use nvoverlay_suite::sim::addr::{Addr, LineAddr, ThreadId};
use nvoverlay_suite::sim::memsys::Runner;
use nvoverlay_suite::sim::nvm::Nvm;
use nvoverlay_suite::sim::trace::{Trace, TraceBuilder};
use nvoverlay_suite::sim::SimConfig;
use nvoverlay_suite::store::{MemIo, SnapshotExport, Store};

fn cfg() -> SimConfig {
    SimConfig::builder()
        .cores(4, 2)
        .l1(2 * 1024, 4, 4)
        .l2(8 * 1024, 8, 8)
        .llc(64 * 1024, 8, 30, 2)
        .epoch_size_stores(80)
        .build()
        .unwrap()
}

fn trace() -> Trace {
    let mut b = TraceBuilder::new(4);
    let mut token = 1u64;
    for round in 0..200u64 {
        for t in 0..4u16 {
            let line = if (round + t as u64).is_multiple_of(9) {
                0x9000 + (round % 16)
            } else {
                0x1000 * (t as u64 + 1) + round % 64
            };
            b.store_with_token(ThreadId(t), Addr::from(LineAddr::new(line)), token);
            token += 1;
        }
    }
    b.build()
}

/// The full image a mount serves at `epoch`: every shard's incremental
/// delta for every servable epoch up to and including it, merged in
/// epoch order (last writer wins), i.e. exactly what `time_travel`
/// falls through.
fn mounted_image(mount: &Mount<'_>, epoch: u64) -> Vec<(u64, u64)> {
    let mut img = std::collections::BTreeMap::new();
    for &(e, readable) in mount.dir().through(epoch) {
        if !readable {
            continue;
        }
        for shard in 0..mount.shards() {
            for (line, tok) in &mount.materialize(e, shard) {
                img.insert(line.raw(), *tok);
            }
        }
    }
    img.into_iter().collect()
}

#[test]
fn restored_snapshots_answer_identically_to_the_live_system() {
    let cfg = cfg();
    let mut sys = NvOverlaySystem::new(&cfg);
    let _ = Runner::new().run(&mut sys, &trace());
    let full = SnapshotExport::from_mnm(sys.mnm()).expect("drained system exports");
    assert!(full.rec_epoch > 0, "workload must capture epochs");

    // Back up, then reopen the store from its written bytes alone —
    // restore must not depend on any in-memory state of the writer.
    let mut store = Store::open(MemIo::new()).unwrap();
    let stats = store.backup("head", &full).unwrap();
    assert!(stats.new_layers > 0);
    let store = Store::open(store.into_io()).unwrap();
    let restored = store.restore("head").unwrap();
    assert_eq!(restored, full, "restore must be byte-for-byte exact");

    // The rebuilt backend answers every master read and every
    // historical read identically to the live one.
    let (mnm, _nvm) = restored.rebuild().unwrap();
    assert_eq!(mnm.rec_epoch(), sys.mnm().rec_epoch());
    assert_eq!(mnm.max_epoch_seen(), sys.mnm().max_epoch_seen());
    assert_eq!(mnm.epochs(), sys.mnm().epochs());
    let live = SnapshotStore::new(sys.mnm());
    let back = SnapshotStore::new(&mnm);
    assert_eq!(back.epochs(), live.epochs());
    for &(line, _) in &full.master {
        for epoch in 1..=full.rec_epoch {
            assert_eq!(
                back.read_at(LineAddr::new(line), epoch),
                live.read_at(LineAddr::new(line), epoch),
                "line {line:#x} diverges at epoch {epoch}"
            );
        }
    }

    // And it mounts under the query service: same servable epochs,
    // same materialized image at the recoverable epoch.
    let live_mount = Mount::new(sys.mnm(), 2).unwrap();
    let back_mount = Mount::new(&mnm, 2).unwrap();
    assert_eq!(back_mount.dir().servable(), live_mount.dir().servable());
    assert_eq!(back_mount.image_epoch(), live_mount.image_epoch());
    assert_eq!(
        mounted_image(&back_mount, full.rec_epoch),
        mounted_image(&live_mount, full.rec_epoch),
    );
    assert_eq!(mounted_image(&back_mount, full.rec_epoch), full.master);
}

#[test]
fn wrap_around_semantics_survive_backup_and_restore() {
    // Mirror `checked_reads_reject_wrapped_epochs` (nvoverlay::store):
    // two writes a full 16-bit sense window apart, so the oldest epoch
    // inside the window is addressable and the one at exactly
    // `newest - EPOCH_SENSE_WINDOW` is rejected as wrapped.
    let mut m = Mnm::new(
        1,
        1,
        OmcConfig {
            pool_pages: 32,
            ..OmcConfig::default()
        },
    );
    let mut n = Nvm::new(4, 400, 200, 8, 100_000);
    let newest = EPOCH_SENSE_WINDOW + 5;
    let line = LineAddr::new(1);
    m.receive_version(&mut n, 0, line, 10, 4);
    m.receive_version(&mut n, 0, line, 20, newest);
    m.finish(&mut n, 0, newest);

    let full = SnapshotExport::from_mnm(&m).unwrap();
    let mut store = Store::open(MemIo::new()).unwrap();
    store.backup("wrap", &full).unwrap();
    let store = Store::open(store.into_io()).unwrap();
    let restored = store.restore("wrap").unwrap();
    assert_eq!(restored, full);

    let (back, _nvm) = restored.rebuild().unwrap();
    assert_eq!(back.rec_epoch(), newest);
    let snap = SnapshotStore::new(&back);
    // Exactly window-many epochs below rec is still wrapped...
    assert_eq!(
        snap.resolve_epoch(newest - EPOCH_SENSE_WINDOW),
        Err(QueryError::Wrapped {
            requested: 5,
            recoverable: newest
        })
    );
    // ...one epoch newer is still addressable, and the newest read
    // still resolves to the post-wrap token.
    assert_eq!(snap.resolve_epoch(newest - EPOCH_SENSE_WINDOW + 1), Ok(6));
    assert_eq!(snap.read_at_checked(line, newest), Ok(Some(20)));

    // The query service applies the same boundary on the restored image.
    let mount = Mount::new(&back, 1).unwrap();
    assert_eq!(
        mount
            .dir()
            .resolve(newest - EPOCH_SENSE_WINDOW)
            .map(|v| v.epoch()),
        Err(QueryError::Wrapped {
            requested: 5,
            recoverable: newest
        })
    );
    assert_eq!(
        mount
            .dir()
            .resolve(newest - EPOCH_SENSE_WINDOW + 1)
            .map(|v| v.epoch()),
        Ok(6)
    );
}
