//! # nvoverlay-suite
//!
//! Facade crate for the NVOverlay (ISCA 2021) reproduction. Re-exports the
//! workspace crates so examples and integration tests can use one import
//! root:
//!
//! * [`sim`] — the `nvsim` timing simulator substrate.
//! * [`overlay`] — the `nvoverlay` mechanism (CST + MNM).
//! * [`baselines`] — the five comparison schemes.
//! * [`chaos`] — deterministic fault injection and crash-site exploration.
//! * [`workloads`] — the paper's 12-workload benchmark suite.
//! * [`serve`] — the concurrent time-travel query service.
//! * [`store`] — the crash-consistent on-disk snapshot store.
//!
//! See README.md for a quickstart and DESIGN.md for the architecture.

#![warn(missing_docs)]

pub use nvbaselines as baselines;
pub use nvchaos as chaos;
pub use nvoverlay as overlay;
pub use nvserve as serve;
pub use nvsim as sim;
pub use nvstore as store;
pub use nvworkloads as workloads;
